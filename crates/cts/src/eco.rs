//! Incremental ECO re-routing: dirty-frontier invalidation with arena
//! reuse.
//!
//! Production gated-clock flows re-route after small engineering change
//! orders (sink adds, moves, removals, activity-table swaps) thousands of
//! times per design. Rebuilding the whole tree from scratch repeats work
//! that the edit never touched; this module re-runs the greedy search
//! only where the edit actually perturbed it:
//!
//! 1. **Frontier** — mark the *dirty* old nodes: every moved or removed
//!    leaf, every leaf in the bucket-grid rings `0..=1` around each edit
//!    location (the neighborhood whose nearest-neighbor and bound
//!    structure the edit perturbs), and — by upward closure — every
//!    ancestor of a dirty node up to the root.
//! 2. **Replay** — every *clean* old internal node has two clean
//!    children, so its merge is re-committed verbatim into the caller's
//!    (fresh, new-leaf-set) objective: the surviving subtrees are rebuilt
//!    bottom-up without any search.
//! 3. **Splice search** — the surviving subtree roots, the dirty-but-kept
//!    leaves, and the added leaves become the *locals*: pre-priced
//!    super-leaves over which the unchanged pruned best-first engine
//!    ([`run_greedy_with_scratch_traced`]) runs a full greedy merge,
//!    splicing the survivors back into one tree.
//!
//! # Soundness and the ε contract
//!
//! The frontier radius (grid rings `0..=1`) is a *quality* heuristic,
//! never a correctness assumption: whatever the frontier, every committed
//! merge is an exact-cost zero-skew merge under the caller's objective
//! and the result is a structurally valid topology over the new leaf set,
//! so the scoped verifier passes over the dirty region by construction of
//! the splice. What the radius trades is how closely the incremental tree
//! tracks a from-scratch re-route:
//!
//! * **Pure replay** (no geometric edit — activity swaps or an empty
//!   batch): the topology is bit-identical to the old one, and every
//!   downstream quantity (enable statistics, embedding) matches a
//!   from-scratch rebuild over the same topology bitwise.
//! * **Splice** (geometric edits): the merges *inside* surviving subtrees
//!   are bit-identical to the old tree's; merges at and above the
//!   frontier are re-searched greedily over super-leaves, so the
//!   objective value may differ from a from-scratch run by a bounded
//!   factor — the `gcr-verify` ECO oracle enforces the documented ε (see
//!   `docs/algorithms.md` §Incremental ECO).
//!
//! # Allocation profile
//!
//! Like the flat engine, the work splits into a seed-like window (the
//! frontier: bucket-grid construction over the old leaves, plus the
//! splice engine's own seed phase) and a loop window (replay merges, the
//! splice engine's merge loop, and the stitch that remaps splice
//! decisions). On a **warm** [`EcoScratch`] with an objective whose
//! columns were pre-reserved (or rewound with
//! [`MergeArena::truncate`](crate::MergeArena::truncate)), the loop
//! window performs zero heap allocations — [`EcoProfile::loop_allocs`]
//! stays 0, which the `zero_alloc` gate enforces. Final topology
//! assembly ([`Topology::from_merges`]) is excluded from the loop window,
//! exactly as in the flat engine.

use std::time::Instant;

use gcr_geometry::Point;
use gcr_trace::Tracer;

use crate::arena::NODE_INDEX_LIMIT;
use crate::greedy::{
    alloc_count, run_greedy_with_scratch_traced, GreedyParams, GreedyScratch, GreedyStats,
    MergeDecision, MergeObjective,
};
use crate::nearest::BucketGrid;
use crate::topology::TopoNode;
use crate::{CtsError, Sink, Topology};

/// One engineering-change-order edit against a completed routing.
///
/// Geometric edits (`AddSink`, `MoveSink`, `RemoveSink`) perturb the leaf
/// set and trigger a dirty-frontier re-search; `SwapActivity` records
/// that a module's activity statistics changed — it dirties nothing
/// geometrically, because the caller rebuilds the objective over the new
/// activity tables and the replay re-prices every gating decision along
/// the way.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EcoEdit {
    /// Append a new sink, gated by activity-model module `module`.
    AddSink {
        /// The sink to add (location and load capacitance).
        sink: Sink,
        /// Module tag for the caller's activity mapping (opaque here).
        module: usize,
    },
    /// Move old sink `index` to a new location (same load, same module).
    MoveSink {
        /// Old sink index.
        index: usize,
        /// New location.
        to: Point,
    },
    /// Remove old sink `index` from the design.
    RemoveSink {
        /// Old sink index.
        index: usize,
    },
    /// A module's activity statistics changed (table swap). Listed for
    /// observability and edit-stream bookkeeping; correctness does not
    /// depend on the list being complete, since the replay re-prices
    /// every node from the caller's new tables unconditionally.
    SwapActivity {
        /// Module tag whose `P(EN)`/`P_tr(EN)` changed (opaque here).
        module: usize,
    },
}

/// Sentinel in old→new index maps for nodes with no new counterpart.
const DEAD: u32 = u32::MAX;
/// Sentinel in the parent array for the root.
const NO_PARENT: u32 = u32::MAX;

/// Bucket-grid rings marked dirty around each edit location (`0..=DIRTY_RINGS`).
/// Ring 1 covers every point within one grid cell (≈ the mean sink
/// spacing) of the edit — the neighborhood whose nearest-neighbor choice
/// the edit can actually flip. A larger radius re-searches more and
/// tracks the from-scratch result more closely; correctness never
/// depends on it (see the module docs).
const DIRTY_RINGS: usize = 1;

/// Per-old-leaf edit classification.
const KEEP: u8 = 0;
const MOVED: u8 = 1;
const REMOVED: u8 = 2;

/// How an edit batch reshapes the leaf set: the shared indexing
/// convention between [`apply_eco`], the `gcr-core` ECO entry points,
/// and every oracle that compares incremental against from-scratch
/// results.
///
/// Surviving old leaves compact downward in ascending old order (exactly
/// like [`Topology::remove_leaf`]); added sinks append after them in edit
/// order; a moved leaf keeps its compacted index with the new location.
#[derive(Clone, Debug, PartialEq)]
pub struct EcoLeafPlan {
    /// Old leaf index → new leaf index; [`EcoLeafPlan::REMOVED`] for
    /// removed leaves.
    pub new_of_old: Vec<u32>,
    /// Number of leaves after the batch (kept + added).
    pub num_new_leaves: usize,
    /// `(old index, new location)` per `MoveSink`, in edit order.
    pub moved: Vec<(usize, Point)>,
    /// `(sink, module)` per `AddSink`, in edit order.
    pub added: Vec<(Sink, usize)>,
}

impl EcoLeafPlan {
    /// Marker in [`EcoLeafPlan::new_of_old`] for a removed leaf.
    pub const REMOVED: u32 = DEAD;

    /// The new sink list under this plan: kept sinks compacted (moved
    /// ones at their new location), then the added sinks.
    #[must_use]
    pub fn new_sinks(&self, old_sinks: &[Sink]) -> Vec<Sink> {
        let mut out = Vec::with_capacity(self.num_new_leaves);
        for (l, s) in old_sinks.iter().enumerate() {
            if self.new_of_old[l] != DEAD {
                out.push(*s);
            }
        }
        for &(index, to) in &self.moved {
            out[self.new_of_old[index] as usize] = Sink::new(to, old_sinks[index].cap());
        }
        for &(sink, _) in &self.added {
            out.push(sink);
        }
        out
    }

    /// The new per-leaf module map under this plan: kept entries
    /// compacted, then the added sinks' modules.
    #[must_use]
    pub fn new_module_of(&self, old_module_of: &[usize]) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.num_new_leaves);
        for (l, &m) in old_module_of.iter().enumerate() {
            if self.new_of_old[l] != DEAD {
                out.push(m);
            }
        }
        for &(_, module) in &self.added {
            out.push(module);
        }
        out
    }
}

/// Validates `edits` against an `old_num_leaves`-sink routing and fills
/// `leaf_edit` with each old leaf's classification. Returns
/// `(adds, removes)`.
fn scan_edits(
    old_num_leaves: usize,
    edits: &[EcoEdit],
    leaf_edit: &mut Vec<u8>,
) -> Result<(usize, usize), CtsError> {
    leaf_edit.clear();
    leaf_edit.resize(old_num_leaves, KEEP);
    let (mut adds, mut removes) = (0usize, 0usize);
    for e in edits {
        let (index, kind) = match *e {
            EcoEdit::AddSink { .. } => {
                adds += 1;
                continue;
            }
            EcoEdit::SwapActivity { .. } => continue,
            EcoEdit::MoveSink { index, .. } => (index, MOVED),
            EcoEdit::RemoveSink { index } => {
                removes += 1;
                (index, REMOVED)
            }
        };
        if index >= old_num_leaves {
            return Err(CtsError::InvalidEco {
                reason: format!(
                    "edit references sink {index} but the routing has {old_num_leaves} sinks"
                ),
            });
        }
        if leaf_edit[index] != KEEP {
            return Err(CtsError::InvalidEco {
                reason: format!("sink {index} is addressed by more than one geometric edit"),
            });
        }
        leaf_edit[index] = kind;
    }
    Ok((adds, removes))
}

/// Computes the [`EcoLeafPlan`] of an edit batch without touching any
/// routing state — the convenience entry point `gcr-core` and the
/// benchmarks use to build the new sink and module lists.
///
/// # Errors
///
/// [`CtsError::InvalidEco`] for an out-of-range or doubly-edited sink
/// index, [`CtsError::NoSinks`] when the batch removes every sink
/// without adding any.
pub fn plan_eco_leaves(old_num_leaves: usize, edits: &[EcoEdit]) -> Result<EcoLeafPlan, CtsError> {
    let mut leaf_edit = Vec::new();
    let (adds, removes) = scan_edits(old_num_leaves, edits, &mut leaf_edit)?;
    let num_new_leaves = old_num_leaves - removes + adds;
    if num_new_leaves == 0 {
        return Err(CtsError::NoSinks);
    }
    let mut new_of_old = vec![DEAD; old_num_leaves];
    let mut next = 0u32;
    for (l, &kind) in leaf_edit.iter().enumerate() {
        if kind != REMOVED {
            new_of_old[l] = next;
            next += 1;
        }
    }
    let mut moved = Vec::new();
    let mut added = Vec::new();
    for e in edits {
        match *e {
            EcoEdit::MoveSink { index, to } => moved.push((index, to)),
            EcoEdit::AddSink { sink, module } => added.push((sink, module)),
            _ => {}
        }
    }
    Ok(EcoLeafPlan {
        new_of_old,
        num_new_leaves,
        moved,
        added,
    })
}

/// Per-phase wall times and allocation counts of one [`apply_eco`] call.
///
/// The windows follow the flat engine's convention: the frontier (plus
/// the splice engine's seed phase) is the seed-like window — it builds a
/// bucket grid over the old leaves, so it allocates even warm — while
/// replay, the splice merge loop, and the decision stitch form the loop
/// window, which is allocation-free on a warm scratch.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EcoProfile {
    /// Wall time (ms) of the dirty-frontier computation.
    pub frontier_ms: f64,
    /// Wall time (ms) of the clean-subtree replay.
    pub replay_ms: f64,
    /// Wall time (ms) of the splice search (the inner greedy run).
    pub search_ms: f64,
    /// Heap allocations in the seed-like window (frontier + inner seed).
    pub seed_allocs: u64,
    /// Heap allocations in the loop window (replay + inner loop +
    /// stitch). 0 on a warm scratch with a pre-reserved objective.
    pub loop_allocs: u64,
}

impl EcoProfile {
    /// Total re-route wall time (ms): frontier + replay + search.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.frontier_ms + self.replay_ms + self.search_ms
    }
}

/// The result of one incremental re-route.
#[derive(Clone, Debug)]
pub struct EcoOutcome {
    /// The topology over the new leaf set.
    pub topology: Topology,
    /// Search counters of the splice run (all zero on a pure replay).
    pub stats: GreedyStats,
    /// Phase timings and allocation counts.
    pub profile: EcoProfile,
    /// New-topology node ids the edit actually re-routed — the splice
    /// super-leaves (survivor roots, dirty-but-kept leaves, added
    /// leaves) plus every internal node the splice search created. This
    /// is the node set to hand to the scoped verifier.
    pub dirty_nodes: Vec<u32>,
    /// Number of leaves after the batch.
    pub num_leaves: usize,
    /// Clean old merges re-committed without search.
    pub replayed: usize,
    /// Merges the splice search performed.
    pub spliced: usize,
    /// Whether the topology was reproduced verbatim (no geometric dirt,
    /// no added sinks) — the case with a bit-identity oracle.
    pub pure_replay: bool,
}

/// Reusable buffers of the ECO engine: one [`GreedyScratch`] for the
/// splice search plus the frontier/replay index maps. Reusing one across
/// ECOs keeps the loop window allocation-free.
#[derive(Debug, Default)]
pub struct EcoScratch {
    /// Scratch of the splice search.
    greedy: GreedyScratch,
    /// Per-old-leaf edit classification.
    leaf_edit: Vec<u8>,
    /// Old leaf → new leaf compaction map.
    new_of_leaf: Vec<u32>,
    /// Old node → parent old node (`NO_PARENT` for the root).
    parent: Vec<u32>,
    /// Old node dirty flags.
    dirty: Vec<bool>,
    /// Old node → new node replay map (`DEAD` for dirty/removed nodes).
    map: Vec<u32>,
    /// Splice super-leaves, as new node ids, ascending.
    locals: Vec<u32>,
    /// Local → new-node map of the splice run (leaves, then merges).
    splice_map: Vec<u32>,
    /// Bucket-grid ring gather buffer.
    ring: Vec<u32>,
    /// Edit locations whose neighborhoods get dirtied.
    dirt: Vec<Point>,
    /// New-topology merge list (replayed, then spliced).
    merges: Vec<(usize, usize)>,
    /// Splice decisions, remapped to new node ids.
    decisions: Vec<MergeDecision>,
}

impl EcoScratch {
    /// Creates an empty scratch. Buffers grow on first use and are then
    /// reused.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The splice decision log of the most recent [`apply_eco`] call, in
    /// new-topology node ids and canonical `a < b` orientation. Replayed
    /// merges are not logged — the old topology *is* their script.
    #[must_use]
    pub fn decisions(&self) -> &[MergeDecision] {
        &self.decisions
    }
}

/// View of the caller's objective restricted to the splice super-leaves:
/// local node `i` is `map[i]` in the new-topology index space. Pairs are
/// canonicalized to ascending global order before touching the inner
/// objective, so the executed merges (and the decision log derived from
/// them) keep the canonical orientation.
struct SpliceObjective<'a, O: MergeObjective> {
    inner: &'a mut O,
    /// Local node → new-topology node.
    map: &'a mut Vec<u32>,
    /// Next unused new-topology node id.
    next_global: usize,
}

impl<O: MergeObjective> SpliceObjective<'_, O> {
    fn pair(&self, a: usize, b: usize) -> (usize, usize) {
        let (ga, gb) = (self.map[a] as usize, self.map[b] as usize);
        if ga < gb {
            (ga, gb)
        } else {
            (gb, ga)
        }
    }
}

impl<O: MergeObjective> MergeObjective for SpliceObjective<'_, O> {
    fn cost(&self, a: usize, b: usize) -> f64 {
        let (x, y) = self.pair(a, b);
        self.inner.cost(x, y)
    }

    fn cost_lower_bound(&self, a: usize, b: usize) -> f64 {
        let (x, y) = self.pair(a, b);
        self.inner.cost_lower_bound(x, y)
    }

    // Admissible: the inner bound quantifies over every *global* leaf at
    // the given distance, a superset of the splice's super-leaves.
    fn cost_lower_bound_at_distance(&self, node: usize, dist: f64) -> f64 {
        self.inner
            .cost_lower_bound_at_distance(self.map[node] as usize, dist)
    }

    fn location(&self, node: usize) -> Point {
        self.inner.location(self.map[node] as usize)
    }

    fn merge(&mut self, a: usize, b: usize, k: usize) -> Result<(), CtsError> {
        debug_assert_eq!(k, self.map.len());
        let (x, y) = self.pair(a, b);
        self.inner.merge(x, y, self.next_global)?;
        self.map.push(self.next_global as u32);
        self.next_global += 1;
        Ok(())
    }
}

/// [`apply_eco_traced`] without tracing.
///
/// # Errors
///
/// As [`apply_eco_traced`].
pub fn apply_eco<O: MergeObjective>(
    old: &Topology,
    old_locations: &[Point],
    edits: &[EcoEdit],
    objective: &mut O,
    params: &GreedyParams,
    scratch: &mut EcoScratch,
) -> Result<EcoOutcome, CtsError> {
    apply_eco_traced(
        old,
        old_locations,
        edits,
        objective,
        params,
        scratch,
        &Tracer::disabled(),
    )
}

/// Incrementally re-routes `old` under an edit batch (see the module
/// docs for the frontier → replay → splice flow).
///
/// `old_locations[l]` is the location of old leaf `l`. `objective` must
/// be a **fresh** objective over the *new* leaf set — leaves only, laid
/// out by the [`EcoLeafPlan`] convention (kept leaves compacted in old
/// order, moved leaves at their new locations, added leaves appended) —
/// typically either newly built or rewound with an arena `truncate`.
/// After a successful call it has committed every internal node of the
/// returned topology, exactly as after a flat run.
///
/// Emits an `eco.apply` span with `eco.frontier` / `eco.splice` /
/// `eco.search` sub-phase spans and `eco.*` counters when `tracer` is
/// enabled; tracing never changes the result.
///
/// # Errors
///
/// [`CtsError::InvalidEco`] for an inconsistent edit batch,
/// [`CtsError::NoSinks`] when the batch removes every sink,
/// [`CtsError::CapacityExceeded`] when the new design outgrows the node
/// index budget, and any error the objective's merges raise.
///
/// # Panics
///
/// As [`run_greedy_with_scratch_traced`], if the objective returns a NaN
/// cost or bound during the splice search.
#[expect(
    clippy::too_many_lines,
    reason = "one function per engine flow, like the flat and coarsened engines"
)]
pub fn apply_eco_traced<O: MergeObjective>(
    old: &Topology,
    old_locations: &[Point],
    edits: &[EcoEdit],
    objective: &mut O,
    params: &GreedyParams,
    scratch: &mut EcoScratch,
    tracer: &Tracer,
) -> Result<EcoOutcome, CtsError> {
    let old_n = old.num_leaves();
    if old_locations.len() != old_n {
        return Err(CtsError::InvalidEco {
            reason: format!(
                "old_locations has {} entries but the topology has {old_n} leaves",
                old_locations.len()
            ),
        });
    }
    let _apply = tracer.span("eco.apply");
    let EcoScratch {
        greedy,
        leaf_edit,
        new_of_leaf,
        parent,
        dirty,
        map,
        locals,
        splice_map,
        ring,
        dirt,
        merges,
        decisions,
    } = scratch;

    // ---- Frontier (seed-like window) -------------------------------
    let frontier_span_start = tracer.now_ns();
    let frontier_t0 = Instant::now();
    let frontier_allocs0 = alloc_count();

    let (adds, removes) = scan_edits(old_n, edits, leaf_edit)?;
    let kept = old_n - removes;
    let new_n = kept + adds;
    if new_n == 0 {
        return Err(CtsError::NoSinks);
    }
    let total = new_n.saturating_mul(2).saturating_sub(1);
    if total > NODE_INDEX_LIMIT {
        return Err(CtsError::CapacityExceeded {
            nodes: total,
            limit: NODE_INDEX_LIMIT,
        });
    }

    new_of_leaf.clear();
    new_of_leaf.resize(old_n, DEAD);
    let mut next_new = 0u32;
    for l in 0..old_n {
        if leaf_edit[l] != REMOVED {
            new_of_leaf[l] = next_new;
            next_new += 1;
        }
    }

    parent.clear();
    parent.resize(old.len(), NO_PARENT);
    for (k, node) in old.bottom_up() {
        if let TopoNode::Internal { left, right } = node {
            parent[left] = k as u32;
            parent[right] = k as u32;
        }
    }

    dirty.clear();
    dirty.resize(old.len(), false);
    dirt.clear();
    for e in edits {
        match *e {
            EcoEdit::MoveSink { index, to } => {
                dirty[index] = true;
                dirt.push(old_locations[index]);
                dirt.push(to);
            }
            EcoEdit::RemoveSink { index } => {
                dirty[index] = true;
                dirt.push(old_locations[index]);
            }
            EcoEdit::AddSink { sink, .. } => dirt.push(sink.location()),
            EcoEdit::SwapActivity { .. } => {}
        }
    }
    if !dirt.is_empty() {
        let grid = BucketGrid::build(old_locations);
        for &p in dirt.iter() {
            let rings = DIRTY_RINGS.min(grid.max_ring(p));
            for r in 0..=rings {
                grid.ring_members(p, r, ring);
                for &m in ring.iter() {
                    dirty[m as usize] = true;
                }
            }
        }
    }
    // Upward closure: children precede parents in index order.
    for i in 0..old.len() {
        if dirty[i] && parent[i] != NO_PARENT {
            dirty[parent[i] as usize] = true;
        }
    }
    let dirty_any = dirty.iter().any(|&d| d);
    let dirty_count = dirty.iter().filter(|&&d| d).count();

    let frontier_ns = elapsed_ns(frontier_t0.elapsed());
    let frontier_allocs = alloc_count() - frontier_allocs0;

    // The caller's objective must hold exactly the planned new leaf set:
    // kept, un-moved leaves sit at their old locations. Tolerance, not
    // bit-identity: a leaf's reported location may round through the
    // objective's merging-segment arithmetic (1-ulp drift), and this
    // check only guards against a permuted or stale leaf set.
    if cfg!(debug_assertions) {
        for l in 0..old_n {
            if leaf_edit[l] == KEEP {
                let got = objective.location(new_of_leaf[l] as usize);
                let want = old_locations[l];
                let tol = 1e-9 * (want.x.abs() + want.y.abs()).max(1.0);
                debug_assert!(
                    (got.x - want.x).abs() <= tol && (got.y - want.y).abs() <= tol,
                    "objective leaf layout does not follow the EcoLeafPlan convention \
                     (leaf {l}: got {got:?}, want {want:?})"
                );
            }
        }
    }

    // ---- Replay (loop window, part 1) ------------------------------
    let replay_span_start = tracer.now_ns();
    let replay_t0 = Instant::now();
    let replay_allocs0 = alloc_count();

    map.clear();
    map.resize(old.len(), DEAD);
    map[..old_n].copy_from_slice(&new_of_leaf[..old_n]);
    merges.clear();
    let mut next_global = new_n;
    let mut replayed = 0usize;
    for (k, node) in old.bottom_up() {
        if let TopoNode::Internal { left, right } = node {
            if dirty[k] {
                continue;
            }
            let (ml, mr) = (map[left] as usize, map[right] as usize);
            debug_assert!(
                ml < mr && mr < next_global,
                "monotone replay map must preserve orientation"
            );
            objective.merge(ml, mr, next_global)?;
            merges.push((ml, mr));
            map[k] = next_global as u32;
            next_global += 1;
            replayed += 1;
        }
    }

    // Splice super-leaves, ascending by new node id: kept leaves whose
    // parent dissolved, then added leaves, then survivor subtree roots.
    locals.clear();
    if dirty_any {
        for l in 0..old_n {
            if leaf_edit[l] == REMOVED {
                continue;
            }
            let p = parent[l];
            if p == NO_PARENT || dirty[p as usize] {
                locals.push(new_of_leaf[l]);
            }
        }
        locals.extend((kept..new_n).map(|i| i as u32));
        for k in old_n..old.len() {
            if dirty[k] {
                continue;
            }
            let p = parent[k];
            if p != NO_PARENT && dirty[p as usize] {
                locals.push(map[k]);
            }
        }
    } else {
        locals.extend((kept..new_n).map(|i| i as u32));
        locals.push(map[old.root()]);
    }
    let num_locals = locals.len();

    let replay_ns = elapsed_ns(replay_t0.elapsed());
    let replay_allocs = alloc_count() - replay_allocs0;

    // ---- Splice search + stitch ------------------------------------
    let first_spliced = next_global;
    let mut stats = GreedyStats::default();
    let mut search_span_start = 0;
    let mut search_ns = 0;
    let mut inner_seed_allocs = 0;
    let mut inner_loop_allocs = 0;
    let mut stitch_ns = 0;
    let mut stitch_allocs = 0;
    decisions.clear();
    if num_locals >= 2 {
        splice_map.clear();
        splice_map.extend_from_slice(locals);
        let mut splice = SpliceObjective {
            inner: &mut *objective,
            map: &mut *splice_map,
            next_global,
        };
        let inner_params = GreedyParams {
            threads: params.threads,
            log_decisions: true,
        };
        search_span_start = tracer.now_ns();
        let search_t0 = Instant::now();
        let (_, inner_stats, inner_profile) =
            run_greedy_with_scratch_traced(num_locals, &mut splice, &inner_params, greedy, tracer)?;
        search_ns = elapsed_ns(search_t0.elapsed());
        next_global = splice.next_global;
        stats = inner_stats;
        inner_seed_allocs = inner_profile.seed_allocs;
        inner_loop_allocs = inner_profile.loop_allocs;

        // Stitch (loop window, part 2): remap the splice merges and
        // decisions into new-topology ids, appending after the replay.
        let stitch_t0 = Instant::now();
        let stitch_allocs0 = alloc_count();
        for d in greedy.decisions() {
            let (ga, gb) = (splice_map[d.a as usize], splice_map[d.b as usize]);
            let (ga, gb) = if ga < gb { (ga, gb) } else { (gb, ga) };
            merges.push((ga as usize, gb as usize));
            decisions.push(MergeDecision {
                a: ga,
                b: gb,
                node: splice_map[d.node as usize],
                key_bits: d.key_bits,
            });
        }
        stitch_ns = elapsed_ns(stitch_t0.elapsed());
        stitch_allocs = alloc_count() - stitch_allocs0;
    }
    let spliced = next_global - first_spliced;
    debug_assert_eq!(next_global, total, "every new node must be committed");

    // Windows are closed: emit the aggregated trace events.
    tracer.complete_span("eco.frontier", frontier_span_start, frontier_ns);
    tracer.complete_span("eco.splice", replay_span_start, replay_ns);
    if num_locals >= 2 {
        tracer.complete_span("eco.search", search_span_start, search_ns);
        tracer.complete_span("eco.splice", search_span_start + search_ns, stitch_ns);
    }
    if tracer.enabled() {
        tracer.counter("eco.dirty_nodes", dirty_count as f64);
        tracer.counter("eco.locals", num_locals as f64);
        tracer.counter("eco.replayed", replayed as f64);
        tracer.counter("eco.spliced", spliced as f64);
    }

    let profile = EcoProfile {
        frontier_ms: frontier_ns as f64 / 1e6,
        replay_ms: replay_ns as f64 / 1e6,
        search_ms: (search_ns + stitch_ns) as f64 / 1e6,
        seed_allocs: frontier_allocs + inner_seed_allocs,
        loop_allocs: replay_allocs + inner_loop_allocs + stitch_allocs,
    };

    let topology = if new_n == 1 {
        Topology::single_sink()?
    } else {
        Topology::from_merges(new_n, merges)?
    };
    let mut dirty_nodes: Vec<u32> = Vec::with_capacity(num_locals + spliced);
    dirty_nodes.extend_from_slice(locals);
    dirty_nodes.extend((first_spliced..next_global).map(|i| i as u32));

    Ok(EcoOutcome {
        topology,
        stats,
        profile,
        dirty_nodes,
        num_leaves: new_n,
        replayed,
        spliced,
        pure_replay: !dirty_any && adds == 0,
    })
}

/// A duration as saturating `u64` nanoseconds.
fn elapsed_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::run_greedy_with_scratch;

    /// The coarsening test objective: cost = Manhattan distance, merge
    /// creates the midpoint. Subset-closed, so an ECO objective over the
    /// new leaf set has bit-identical leaf states.
    #[derive(Clone)]
    struct PointObjective {
        points: Vec<Point>,
    }

    impl PointObjective {
        fn over(points: &[Point]) -> Self {
            Self {
                points: points.to_vec(),
            }
        }
    }

    impl MergeObjective for PointObjective {
        fn cost(&self, a: usize, b: usize) -> f64 {
            self.points[a].manhattan(self.points[b])
        }
        fn cost_lower_bound(&self, a: usize, b: usize) -> f64 {
            self.cost(a, b)
        }
        fn cost_lower_bound_at_distance(&self, _node: usize, dist: f64) -> f64 {
            dist
        }
        fn location(&self, node: usize) -> Point {
            self.points[node]
        }
        fn merge(&mut self, a: usize, b: usize, k: usize) -> Result<(), CtsError> {
            assert_eq!(k, self.points.len());
            let mid = self.points[a].midpoint(self.points[b]);
            self.points.push(mid);
            Ok(())
        }
    }

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(((i * 131) % 10_007) as f64, ((i * 197) % 9_973) as f64))
            .collect()
    }

    fn route(points: &[Point]) -> Topology {
        let mut obj = PointObjective::over(points);
        let mut scratch = GreedyScratch::new();
        let params = GreedyParams::default();
        run_greedy_with_scratch(points.len(), &mut obj, &params, &mut scratch)
            .unwrap()
            .0
    }

    #[test]
    fn plan_compacts_moves_and_appends() {
        let edits = [
            EcoEdit::RemoveSink { index: 1 },
            EcoEdit::MoveSink {
                index: 2,
                to: Point::new(5.0, 5.0),
            },
            EcoEdit::AddSink {
                sink: Sink::new(Point::new(9.0, 9.0), 0.07),
                module: 3,
            },
            EcoEdit::SwapActivity { module: 0 },
        ];
        let plan = plan_eco_leaves(4, &edits).unwrap();
        assert_eq!(plan.num_new_leaves, 4);
        assert_eq!(plan.new_of_old, vec![0, EcoLeafPlan::REMOVED, 1, 2]);
        let old_sinks = [
            Sink::new(Point::new(0.0, 0.0), 0.01),
            Sink::new(Point::new(1.0, 0.0), 0.02),
            Sink::new(Point::new(2.0, 0.0), 0.03),
            Sink::new(Point::new(3.0, 0.0), 0.04),
        ];
        let sinks = plan.new_sinks(&old_sinks);
        assert_eq!(sinks.len(), 4);
        assert_eq!(sinks[0], old_sinks[0]);
        // The moved sink keeps its load at the new location.
        assert_eq!(sinks[1], Sink::new(Point::new(5.0, 5.0), 0.03));
        assert_eq!(sinks[2], old_sinks[3]);
        assert_eq!(sinks[3], Sink::new(Point::new(9.0, 9.0), 0.07));
        assert_eq!(plan.new_module_of(&[10, 11, 12, 13]), vec![10, 12, 13, 3]);
    }

    #[test]
    fn invalid_batches_are_rejected() {
        let out_of_range = plan_eco_leaves(3, &[EcoEdit::RemoveSink { index: 3 }]);
        assert!(matches!(out_of_range, Err(CtsError::InvalidEco { .. })));
        let double = plan_eco_leaves(
            3,
            &[
                EcoEdit::RemoveSink { index: 1 },
                EcoEdit::MoveSink {
                    index: 1,
                    to: Point::ORIGIN,
                },
            ],
        );
        assert!(matches!(double, Err(CtsError::InvalidEco { .. })));
        let empty = plan_eco_leaves(1, &[EcoEdit::RemoveSink { index: 0 }]);
        assert!(matches!(empty, Err(CtsError::NoSinks)));
    }

    /// An activity-only batch replays the old topology bit-identically:
    /// same merges, zero splice work, `pure_replay` set.
    #[test]
    fn activity_only_batch_is_a_pure_replay() {
        let points = scatter(60);
        let old = route(&points);
        let mut obj = PointObjective::over(&points);
        let mut scratch = EcoScratch::new();
        let out = apply_eco(
            &old,
            &points,
            &[EcoEdit::SwapActivity { module: 7 }],
            &mut obj,
            &GreedyParams::default(),
            &mut scratch,
        )
        .unwrap();
        assert!(out.pure_replay);
        assert_eq!(out.topology, old);
        assert_eq!(out.spliced, 0);
        assert_eq!(out.replayed, 59);
        assert_eq!(out.stats, GreedyStats::default());
        assert!(scratch.decisions().is_empty());
        // The objective committed every internal node.
        assert_eq!(obj.points.len(), 2 * 60 - 1);
        // The single dirty node is the surviving root.
        assert_eq!(out.dirty_nodes, vec![old.root() as u32]);
    }

    /// A single-sink move re-routes locally: most merges replay, the
    /// spliced region stays small, and the result is a valid topology
    /// over the same leaf count.
    #[test]
    fn move_edit_splices_locally() {
        let points = scatter(200);
        let old = route(&points);
        let mut new_points = points.clone();
        new_points[100] = Point::new(new_points[100].x + 40.0, new_points[100].y + 40.0);
        let mut obj = PointObjective::over(&new_points);
        let mut scratch = EcoScratch::new();
        let out = apply_eco(
            &old,
            &points,
            &[EcoEdit::MoveSink {
                index: 100,
                to: new_points[100],
            }],
            &mut obj,
            &GreedyParams::default(),
            &mut scratch,
        )
        .unwrap();
        assert!(!out.pure_replay);
        assert_eq!(out.num_leaves, 200);
        assert_eq!(out.topology.num_leaves(), 200);
        assert_eq!(out.topology.subtree_sizes()[out.topology.root()], 200);
        assert_eq!(out.replayed + out.spliced, 199);
        assert!(
            out.spliced < 100,
            "a single move must not re-search half the tree ({} spliced)",
            out.spliced
        );
        assert_eq!(scratch.decisions().len(), out.spliced);
        for d in scratch.decisions() {
            assert!(d.a < d.b && (d.b as usize) < d.node as usize);
        }
        assert_eq!(obj.points.len(), 2 * 200 - 1);
    }

    /// Removing a leaf produces the compacted leaf indexing of
    /// `Topology::remove_leaf` and a full-coverage topology.
    #[test]
    fn remove_edit_compacts_leaves() {
        let points = scatter(80);
        let old = route(&points);
        let mut new_points = points.clone();
        new_points.remove(17);
        let mut obj = PointObjective::over(&new_points);
        let mut scratch = EcoScratch::new();
        let out = apply_eco(
            &old,
            &points,
            &[EcoEdit::RemoveSink { index: 17 }],
            &mut obj,
            &GreedyParams::default(),
            &mut scratch,
        )
        .unwrap();
        assert_eq!(out.num_leaves, 79);
        assert_eq!(out.topology.num_leaves(), 79);
        assert_eq!(out.topology.subtree_sizes()[out.topology.root()], 79);
    }

    /// Adding a sink in empty space far from every old leaf still works:
    /// the old root survives and the splice merges it with the new leaf.
    #[test]
    fn add_in_far_corner_splices_root_and_leaf() {
        let points: Vec<Point> = (0..30)
            .map(|i| {
                Point::new(
                    f64::from(i as u32 % 6) * 10.0,
                    f64::from(i as u32 / 6) * 10.0,
                )
            })
            .collect();
        let old = route(&points);
        let far = Point::new(1.0e6, 1.0e6);
        let mut new_points = points.clone();
        new_points.push(far);
        let mut obj = PointObjective::over(&new_points);
        let mut scratch = EcoScratch::new();
        let out = apply_eco(
            &old,
            &points,
            &[EcoEdit::AddSink {
                sink: Sink::new(far, 0.01),
                module: 0,
            }],
            &mut obj,
            &GreedyParams::default(),
            &mut scratch,
        )
        .unwrap();
        assert_eq!(out.num_leaves, 31);
        assert_eq!(out.topology.subtree_sizes()[out.topology.root()], 31);
        assert!(!out.pure_replay);
        assert!(out.spliced >= 1);
    }

    /// Warm ECO loop: the second identical call through the same scratch
    /// (with a fresh objective) reproduces the first bitwise and keeps
    /// the loop window allocation-free by accounting.
    #[test]
    fn warm_eco_is_deterministic() {
        let points = scatter(150);
        let old = route(&points);
        let mut new_points = points.clone();
        new_points[75] = Point::new(new_points[75].x + 25.0, new_points[75].y);
        let edits = [EcoEdit::MoveSink {
            index: 75,
            to: new_points[75],
        }];
        let mut scratch = EcoScratch::new();
        let run = |scratch: &mut EcoScratch| {
            let mut obj = PointObjective::over(&new_points);
            let out = apply_eco(
                &old,
                &points,
                &edits,
                &mut obj,
                &GreedyParams::default(),
                scratch,
            )
            .unwrap();
            (out.topology, scratch.decisions().to_vec())
        };
        let (cold_topo, cold_log) = run(&mut scratch);
        let (warm_topo, warm_log) = run(&mut scratch);
        assert_eq!(cold_topo, warm_topo);
        assert_eq!(cold_log, warm_log);
    }

    /// Down to one sink: the engine returns the single-sink topology.
    #[test]
    fn shrinking_to_one_sink_works() {
        let points = scatter(2);
        let old = route(&points);
        let new_points = vec![points[0]];
        let mut obj = PointObjective::over(&new_points);
        let mut scratch = EcoScratch::new();
        let out = apply_eco(
            &old,
            &points,
            &[EcoEdit::RemoveSink { index: 1 }],
            &mut obj,
            &GreedyParams::default(),
            &mut scratch,
        )
        .unwrap();
        assert_eq!(out.num_leaves, 1);
        assert_eq!(out.topology.len(), 1);
    }

    /// The traced run is bit-identical to the untraced one and emits the
    /// `eco.*` span family.
    #[test]
    fn traced_eco_matches_untraced_and_emits_spans() {
        use gcr_trace::{MemorySink, Tracer};
        use std::sync::Arc;
        let points = scatter(120);
        let old = route(&points);
        let mut new_points = points.clone();
        new_points[60] = Point::new(new_points[60].x + 30.0, new_points[60].y + 10.0);
        let edits = [EcoEdit::MoveSink {
            index: 60,
            to: new_points[60],
        }];
        let mut scratch = EcoScratch::new();
        let mut obj = PointObjective::over(&new_points);
        let plain = apply_eco(
            &old,
            &points,
            &edits,
            &mut obj,
            &GreedyParams::default(),
            &mut scratch,
        )
        .unwrap();
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::new(sink.clone());
        let mut obj2 = PointObjective::over(&new_points);
        let traced = apply_eco_traced(
            &old,
            &points,
            &edits,
            &mut obj2,
            &GreedyParams::default(),
            &mut scratch,
            &tracer,
        )
        .unwrap();
        assert_eq!(plain.topology, traced.topology);
        let names: Vec<&str> = sink
            .events()
            .iter()
            .map(gcr_trace::TraceEvent::name)
            .collect();
        for required in ["eco.apply", "eco.frontier", "eco.splice", "eco.search"] {
            assert!(names.contains(&required), "missing span {required}");
        }
        assert!(sink.counter("eco.locals").unwrap() >= 2.0);
        assert_eq!(
            sink.counter("eco.replayed").unwrap() + sink.counter("eco.spliced").unwrap(),
            119.0
        );
    }
}
