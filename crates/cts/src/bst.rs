//! Bounded-skew tree construction: relax the exact zero-skew constraint to
//! a skew *budget* and harvest the wire (and power) the balancing detours
//! were costing.
//!
//! Classic zero-skew DME forces every merge to equalize the two sides'
//! Elmore delays exactly, snaking wire whenever the geometry cannot absorb
//! the imbalance. With a budget `B`, each subtree instead carries a delay
//! *interval* `[lo, hi]`; a merge only needs the union interval to stay
//! within `B`, so small imbalances ride for free. This is the
//! bounded-skew-tree idea of Cong–Koh, restricted to the interval
//! abstraction our merging-region machinery supports.

use gcr_geometry::{Point, Trr, GEOM_EPS};
use gcr_rctree::{Device, Technology};

use crate::tree::build_clock_tree;
use crate::{ClockTree, CtsError, DeviceAssignment, Sink, TopoNode, Topology};

/// The bounded-skew analogue of [`SubtreeState`](crate::SubtreeState): a
/// merging region, a delay *interval* across the subtree's sinks, the
/// presented capacitance, and the pending edge device.
#[derive(Clone, Debug, PartialEq)]
pub struct BstState {
    /// Merging region for the subtree root.
    pub ms: Trr,
    /// Earliest sink arrival below the root (ps).
    pub lo: f64,
    /// Latest sink arrival below the root (ps).
    pub hi: f64,
    /// Downstream capacitance at the root (pF).
    pub cap: f64,
    /// Gate or buffer at the top of the edge that will feed this root.
    pub edge_device: Option<Device>,
}

impl BstState {
    /// The state of a single sink.
    #[must_use]
    pub fn leaf_with_device(sink: &Sink, device: Option<Device>) -> Self {
        Self {
            ms: Trr::point(sink.location()),
            lo: 0.0,
            hi: 0.0,
            cap: sink.cap(),
            edge_device: device,
        }
    }

    /// The skew already accumulated inside this subtree.
    #[must_use]
    pub fn spread(&self) -> f64 {
        self.hi - self.lo
    }

    /// Delay-shift polynomial coefficients `(s0, α, β)` for feeding this
    /// subtree through an edge of length `e`: every sink below shifts by
    /// `s0 + α·e + β·e²` (upstream resistance is shared by all sinks, so
    /// the interval translates rigidly).
    fn shift_coefficients(&self, tech: &Technology) -> (f64, f64, f64) {
        let r = tech.unit_res();
        let c = tech.unit_cap();
        let beta = r * c / 2.0;
        match &self.edge_device {
            Some(d) => (
                d.intrinsic_delay() + d.output_res() * self.cap,
                r * self.cap + d.output_res() * c,
                beta,
            ),
            None => (0.0, r * self.cap, beta),
        }
    }

    fn shift(&self, tech: &Technology, e: f64) -> f64 {
        let (s0, alpha, beta) = self.shift_coefficients(tech);
        s0 + alpha * e + beta * e * e
    }

    fn presented_cap(&self, tech: &Technology, e: f64) -> f64 {
        match &self.edge_device {
            Some(d) => d.input_cap(),
            None => tech.unit_cap() * e + self.cap,
        }
    }
}

/// The result of one bounded-skew merge.
#[derive(Clone, Debug, PartialEq)]
pub struct BstOutcome {
    /// The merged subtree state (edge device unset; the caller assigns it).
    pub state: BstState,
    /// Electrical tap length to the first child.
    pub ea: f64,
    /// Electrical tap length to the second child.
    pub eb: f64,
}

/// Merges two bounded-skew subtrees so the union delay interval stays
/// within `bound` (ps), snaking only the residual that the budget cannot
/// absorb. With `bound == 0` this degenerates to the exact zero-skew merge
/// on point intervals.
///
/// # Panics
///
/// Panics if `bound` is negative/non-finite, if a child's own spread
/// already exceeds `bound`, or if the merge regions fail to intersect
/// (non-finite inputs).
#[must_use]
pub fn bounded_skew_merge(tech: &Technology, a: &BstState, b: &BstState, bound: f64) -> BstOutcome {
    assert!(
        bound.is_finite() && bound >= 0.0,
        "skew bound must be finite and >= 0, got {bound}"
    );
    assert!(
        a.spread() <= bound + 1e-9 && b.spread() <= bound + 1e-9,
        "child spread ({}, {}) exceeds the bound {bound}",
        a.spread(),
        b.spread()
    );
    let d = a.ms.distance(&b.ms);
    let (s0a, alpha_a, beta) = a.shift_coefficients(tech);
    let (s0b, alpha_b, _) = b.shift_coefficients(tech);

    // Midpoint-aligned split, exactly as in the zero-skew solve but on
    // interval midpoints.
    let mid_a = (a.lo + a.hi) / 2.0 + s0a;
    let mid_b = (b.lo + b.hi) / 2.0 + s0b;
    let denom = alpha_a + alpha_b + 2.0 * beta * d;
    let x = if denom > 0.0 {
        (mid_b - mid_a + alpha_b * d + beta * d * d) / denom
    } else {
        0.0
    };

    let (mut ea, mut eb) = (x.clamp(0.0, d), d - x.clamp(0.0, d));
    // Width after the clamped split.
    let width = |ea: f64, eb: f64| -> f64 {
        let (sa, sb) = (a.shift(tech, ea), b.shift(tech, eb));
        (a.hi + sa).max(b.hi + sb) - (a.lo + sa).min(b.lo + sb)
    };
    if width(ea, eb) > bound {
        // The budget cannot absorb the clamped imbalance: snake the fast
        // side just enough to bring the union width down to the bound.
        let slow_is_a = a.lo + a.shift(tech, ea) + a.hi > b.lo + b.shift(tech, eb) + b.hi;
        let need = width(ea, eb) - bound;
        let (alpha_f, base_e) = if slow_is_a {
            (alpha_b, eb)
        } else {
            (alpha_a, ea)
        };
        // Solve β·e² + (α + 2β·base)·e = need for the extra length.
        let lin = alpha_f + 2.0 * beta * base_e;
        let extra = if beta > 0.0 {
            ((lin * lin + 4.0 * beta * need).sqrt() - lin) / (2.0 * beta)
        } else if lin > 0.0 {
            need / lin
        } else {
            0.0
        };
        if slow_is_a {
            eb += extra;
        } else {
            ea += extra;
        }
    }

    let scale = 1.0
        + d
        + ea
        + eb
        + a.ms.center().manhattan(Point::ORIGIN)
        + b.ms.center().manhattan(Point::ORIGIN);
    let ta = a.ms.expanded(ea);
    let tb = b.ms.expanded(eb);
    let ms = ta
        .intersection_with_slack(&tb, GEOM_EPS * scale)
        .or_else(|| ta.intersection_with_slack(&tb, 1e-3 * scale))
        .unwrap_or_else(|| {
            panic!("bounded-skew merge regions failed to intersect: d={d}, ea={ea}, eb={eb}")
        });

    let (sa, sb) = (a.shift(tech, ea), b.shift(tech, eb));
    BstOutcome {
        state: BstState {
            ms,
            lo: (a.lo + sa).min(b.lo + sb),
            hi: (a.hi + sa).max(b.hi + sb),
            cap: a.presented_cap(tech, ea) + b.presented_cap(tech, eb),
            edge_device: None,
        },
        ea,
        eb,
    }
}

/// Deferred-merge embedding under a skew budget: like
/// [`embed`](crate::embed), but each merge may leave up to `bound` ps of
/// sink-arrival spread, trading skew for wirelength.
///
/// # Errors
///
/// Same as [`embed`](crate::embed).
///
/// # Panics
///
/// Panics if `bound` is negative or non-finite.
#[expect(
    clippy::expect_used,
    reason = "the two-pass DME sweep fills every state before it is read: \
              children precede parents in bottom-up order and vice versa"
)]
pub fn embed_bounded_skew(
    topology: &Topology,
    sinks: &[Sink],
    tech: &Technology,
    assignment: &DeviceAssignment,
    source: Point,
    bound: f64,
) -> Result<ClockTree, CtsError> {
    if sinks.len() != topology.num_leaves() {
        return Err(CtsError::InvalidTopology {
            reason: format!(
                "topology has {} leaves but {} sinks were supplied",
                topology.num_leaves(),
                sinks.len()
            ),
        });
    }
    if assignment.len() != topology.len() {
        return Err(CtsError::AssignmentMismatch {
            assigned: assignment.len(),
            expected: topology.len(),
        });
    }

    let n = topology.len();
    let mut states: Vec<Option<BstState>> = vec![None; n];
    let mut tap_lengths: Vec<(f64, f64)> = vec![(0.0, 0.0); n];
    let devices: Vec<Option<Device>> = (0..n).map(|i| assignment.get(i)).collect();

    for (i, node) in topology.bottom_up() {
        let state = match node {
            TopoNode::Leaf { sink } => BstState::leaf_with_device(&sinks[sink], devices[i]),
            TopoNode::Internal { left, right } => {
                let a = states[left].clone().expect("bottom-up order");
                let b = states[right].clone().expect("bottom-up order");
                let outcome = bounded_skew_merge(tech, &a, &b, bound);
                tap_lengths[i] = (outcome.ea, outcome.eb);
                let mut merged = outcome.state;
                merged.edge_device = devices[i];
                merged
            }
        };
        states[i] = Some(state);
    }

    let mut locations: Vec<Point> = vec![Point::ORIGIN; n];
    let root = topology.root();
    locations[root] = states[root]
        .as_ref()
        .expect("root state")
        .ms
        .closest_point(source);
    for i in (0..n).rev() {
        if let TopoNode::Internal { left, right } = topology.node(i) {
            let p = locations[i];
            locations[left] = states[left].as_ref().expect("state").ms.closest_point(p);
            locations[right] = states[right].as_ref().expect("state").ms.closest_point(p);
        }
    }

    Ok(build_clock_tree(
        topology,
        sinks,
        &devices,
        &locations,
        &tap_lengths,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{embed, nearest_neighbor_topology};
    use gcr_geometry::Point;

    fn sinks() -> Vec<Sink> {
        // Asymmetric loads and spacing so zero skew genuinely costs wire.
        (0..12)
            .map(|i| {
                Sink::new(
                    Point::new(
                        (f64::from(i) * 3_137.0) % 20_000.0,
                        (f64::from(i) * 7_411.0) % 20_000.0,
                    ),
                    0.02 + 0.01 * f64::from(i % 6),
                )
            })
            .collect()
    }

    #[test]
    fn zero_bound_matches_zero_skew_embedding() {
        let tech = Technology::default();
        let sinks = sinks();
        let topo = nearest_neighbor_topology(&tech, &sinks, None).unwrap();
        let assignment = DeviceAssignment::none(&topo);
        let src = Point::new(10_000.0, 10_000.0);
        let zst = embed(&topo, &sinks, &tech, &assignment, src).unwrap();
        let bst = embed_bounded_skew(&topo, &sinks, &tech, &assignment, src, 0.0).unwrap();
        assert!((zst.total_wire_length() - bst.total_wire_length()).abs() < 1e-6);
        assert!(bst.verify_skew(&tech) < 1e-9 * bst.source_to_sink_delay(&tech).max(1.0));
    }

    #[test]
    fn measured_skew_respects_the_budget() {
        let tech = Technology::default();
        let sinks = sinks();
        let topo = nearest_neighbor_topology(&tech, &sinks, None).unwrap();
        let assignment = DeviceAssignment::none(&topo);
        let src = Point::new(10_000.0, 10_000.0);
        for bound in [0.0, 5.0, 20.0, 100.0] {
            let tree = embed_bounded_skew(&topo, &sinks, &tech, &assignment, src, bound).unwrap();
            let skew = tree.verify_skew(&tech);
            assert!(skew <= bound + 1e-6, "bound {bound}: measured skew {skew}");
        }
    }

    #[test]
    fn larger_budget_never_costs_more_wire() {
        let tech = Technology::default();
        let sinks = sinks();
        let topo = nearest_neighbor_topology(&tech, &sinks, None).unwrap();
        let assignment = DeviceAssignment::none(&topo);
        let src = Point::new(10_000.0, 10_000.0);
        let wire = |bound: f64| {
            embed_bounded_skew(&topo, &sinks, &tech, &assignment, src, bound)
                .unwrap()
                .total_wire_length()
        };
        let (w0, w20, w200) = (wire(0.0), wire(20.0), wire(200.0));
        assert!(w20 <= w0 + 1e-6, "{w20} > {w0}");
        assert!(w200 <= w20 + 1e-6, "{w200} > {w20}");
        // And a generous budget should actually save something on this
        // asymmetric instance.
        assert!(w200 < w0, "budget saved no wire at all");
    }

    #[test]
    fn gated_bounded_tree_works() {
        let tech = Technology::default();
        let sinks = sinks();
        let topo = nearest_neighbor_topology(&tech, &sinks, Some(tech.and_gate())).unwrap();
        let assignment = DeviceAssignment::everywhere(&topo, tech.and_gate());
        let src = Point::new(10_000.0, 10_000.0);
        let tree = embed_bounded_skew(&topo, &sinks, &tech, &assignment, src, 50.0).unwrap();
        assert!(tree.verify_skew(&tech) <= 50.0 + 1e-6);
        assert_eq!(tree.device_count(), tree.len());
    }

    #[test]
    #[should_panic(expected = "skew bound")]
    fn negative_bound_panics() {
        let tech = Technology::default();
        let a = BstState::leaf_with_device(&Sink::new(Point::ORIGIN, 0.05), None);
        let b = BstState::leaf_with_device(&Sink::new(Point::new(10.0, 0.0), 0.05), None);
        let _ = bounded_skew_merge(&tech, &a, &b, -1.0);
    }

    #[test]
    fn interval_bookkeeping_is_conservative() {
        let tech = Technology::default();
        let a = BstState::leaf_with_device(&Sink::new(Point::ORIGIN, 0.05), None);
        let b = BstState::leaf_with_device(&Sink::new(Point::new(4_000.0, 0.0), 0.30), None);
        let m = bounded_skew_merge(&tech, &a, &b, 10.0);
        assert!(m.state.spread() <= 10.0 + 1e-9);
        assert!(m.state.lo <= m.state.hi);
        assert!(m.state.cap > 0.0);
        assert!(m.ea + m.eb >= a.ms.distance(&b.ms) - 1e-9);
    }
}
