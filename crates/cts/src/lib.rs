//! Zero-skew clock-tree synthesis in the DME style.
//!
//! This crate is the routing substrate of the gated-clock-routing
//! reproduction: everything the paper inherits from the zero-skew clock
//! routing literature (Tsay \[6\]; Boese–Kahng \[2\]; Edahiro \[3\]).
//!
//! The flow is split into three orthogonal pieces:
//!
//! 1. **Topology construction** — [`run_greedy`] repeatedly merges the pair
//!    of live subtrees with minimum cost under a pluggable
//!    [`MergeObjective`]; [`nearest_neighbor_topology`] is the classic
//!    geometric objective (and the paper's baseline), while the gated
//!    router in `gcr-core` plugs in the switched-capacitance objective of
//!    Equation (3). The engine prunes with admissible lower bounds over a
//!    [`BucketGrid`] of the sink locations, committing bit-identical
//!    merges to the exhaustive reference ([`run_greedy_exhaustive`]) at a
//!    fraction of the exact cost evaluations.
//! 2. **Zero-skew merging** — [`zero_skew_merge`] computes, for two
//!    subtrees, the exact tap-point split `e_a`/`e_b` (with wire snaking
//!    when one side must be elongated) and the resulting merging region,
//!    delay and capacitance under the Elmore model. Devices (masking gates,
//!    buffers) at subtree roots *decouple* downstream capacitance.
//! 3. **Embedding** — [`embed`] runs the deferred-merge bottom-up pass over
//!    a fixed [`Topology`] with a per-node [`DeviceAssignment`] and then
//!    places every internal node top-down, yielding a concrete
//!    [`ClockTree`] whose zero skew can be independently verified against
//!    `gcr-rctree`'s Elmore engine.
//!
//! Separating topology from embedding is what lets the paper's
//! gate-reduction heuristic (§4.3) re-balance the same tree with fewer
//! gates: remove devices, re-run [`embed`], and the tree is zero-skew
//! again with new wire lengths.
//!
//! # Example
//!
//! ```
//! use gcr_cts::{build_buffered_tree, Sink};
//! use gcr_geometry::Point;
//! use gcr_rctree::Technology;
//!
//! let tech = Technology::default();
//! let sinks = vec![
//!     Sink::new(Point::new(0.0, 0.0), 0.05),
//!     Sink::new(Point::new(800.0, 200.0), 0.03),
//!     Sink::new(Point::new(300.0, 900.0), 0.06),
//!     Sink::new(Point::new(900.0, 900.0), 0.04),
//! ];
//! let tree = build_buffered_tree(&tech, &sinks, Point::new(450.0, 450.0))?;
//! // The embedded tree is zero-skew under the Elmore model.
//! assert!(tree.verify_skew(&tech) < 1e-6);
//! # Ok::<(), gcr_cts::CtsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod bst;
mod coarsen;
mod design_io;
mod eco;
mod embed;
mod error;
mod greedy;
mod merge;
mod mmm;
mod nearest;
mod route;
mod sink;
mod topology;
mod tree;

pub use arena::{clone_preserving_capacity, MergeArena, BOUND_LANES};
pub use bst::{bounded_skew_merge, embed_bounded_skew, BstOutcome, BstState};
pub use coarsen::{
    partition_regions, run_greedy_coarsened, run_greedy_coarsened_traced, CoarsenParams,
    CoarsenScratch, DEFAULT_REGION_SIZE,
};
pub use design_io::{load_design, save_design, LoadedDesign};
pub use eco::{
    apply_eco, apply_eco_traced, plan_eco_leaves, EcoEdit, EcoLeafPlan, EcoOutcome, EcoProfile,
    EcoScratch,
};
pub use embed::{embed, embed_sized, embed_sized_traced, embed_traced, DeviceAssignment};
pub use error::CtsError;
pub use greedy::{
    canonical_decision_log, run_greedy, run_greedy_checked, run_greedy_checked_logged,
    run_greedy_exhaustive, run_greedy_exhaustive_instrumented, run_greedy_exhaustive_with_scratch,
    run_greedy_exhaustive_with_scratch_traced, run_greedy_instrumented, run_greedy_traced,
    run_greedy_with_scratch, run_greedy_with_scratch_traced, set_alloc_probe, GreedyParams,
    GreedyProfile, GreedyScratch, GreedyStats, MergeDecision, MergeObjective,
};
pub use merge::{balance_devices, zero_skew_merge, MergeOutcome, SizingLimits, SubtreeState};
pub use mmm::mmm_topology;
pub use nearest::{
    build_buffered_tree, nearest_neighbor_topology, BucketGrid, NearestNeighborObjective,
};
pub use route::{format_routes, realize_routes, RoutedEdge};
pub use sink::Sink;
pub use topology::{TopoNode, Topology};
pub use tree::{ClockTree, RawTreeNode, TreeId, TreeNode};
