//! The Method of Means and Medians (Jackson–Srinivasan–Kuh): the classic
//! *top-down* clock topology generator, included as a second baseline
//! alongside the bottom-up nearest-neighbor heuristic.
//!
//! The sink set is split recursively at the median coordinate, alternating
//! between x and y, producing a geometrically balanced binary topology.
//! MMM predates DME; here it only decides the *shape* — the zero-skew
//! embedding still comes from [`embed`](crate::embed).

use crate::{CtsError, Sink, Topology};

/// Builds a topology by recursive median partitioning, alternating between
/// x- and y-cuts ("method of means and medians").
///
/// ```
/// use gcr_cts::{mmm_topology, Sink};
/// use gcr_geometry::Point;
///
/// let sinks: Vec<Sink> = (0..8)
///     .map(|i| Sink::new(Point::new((i % 4) as f64 * 100.0, (i / 4) as f64 * 100.0), 0.05))
///     .collect();
/// let topo = mmm_topology(&sinks)?;
/// assert_eq!(topo.num_leaves(), 8);
/// assert_eq!(topo.height(), 3); // perfectly balanced on a grid
/// # Ok::<(), gcr_cts::CtsError>(())
/// ```
///
/// # Errors
///
/// Returns [`CtsError::NoSinks`] when `sinks` is empty.
pub fn mmm_topology(sinks: &[Sink]) -> Result<Topology, CtsError> {
    if sinks.is_empty() {
        return Err(CtsError::NoSinks);
    }
    let mut merges: Vec<(usize, usize)> = Vec::with_capacity(sinks.len().saturating_sub(1));
    let mut next = sinks.len();
    let all: Vec<usize> = (0..sinks.len()).collect();
    build(sinks, all, true, &mut merges, &mut next);
    Topology::from_merges(sinks.len(), &merges)
}

/// Recursively partitions `members` (sink indices) and records merges
/// bottom-up; returns the topology node index of the subtree root.
fn build(
    sinks: &[Sink],
    mut members: Vec<usize>,
    cut_x: bool,
    merges: &mut Vec<(usize, usize)>,
    next: &mut usize,
) -> usize {
    if members.len() == 1 {
        return members[0];
    }
    // Median split on the alternating coordinate (ties broken by the other
    // coordinate then index, for determinism).
    members.sort_by(|&a, &b| {
        let (pa, pb) = (sinks[a].location(), sinks[b].location());
        let key = |p: gcr_geometry::Point| if cut_x { (p.x, p.y) } else { (p.y, p.x) };
        key(pa)
            .partial_cmp(&key(pb))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mid = members.len() / 2;
    let right = members.split_off(mid);
    let left_root = build(sinks, members, !cut_x, merges, next);
    let right_root = build(sinks, right, !cut_x, merges, next);
    let this = *next;
    *next += 1;
    merges.push((left_root, right_root));
    this
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{embed, DeviceAssignment};
    use gcr_geometry::Point;
    use gcr_rctree::Technology;

    fn grid_sinks(n: usize) -> Vec<Sink> {
        (0..n)
            .map(|i| {
                Sink::new(
                    Point::new((i % 4) as f64 * 1_000.0, (i / 4) as f64 * 1_000.0),
                    0.05,
                )
            })
            .collect()
    }

    #[test]
    fn splits_a_grid_balanced() {
        let topo = mmm_topology(&grid_sinks(16)).unwrap();
        assert_eq!(topo.num_leaves(), 16);
        // A 16-sink median split is perfectly balanced: height 4.
        assert_eq!(topo.height(), 4);
        let sizes = topo.subtree_sizes();
        // The root's two children split 8/8.
        if let crate::TopoNode::Internal { left, right } = topo.node(topo.root()) {
            assert_eq!(sizes[left], 8);
            assert_eq!(sizes[right], 8);
        } else {
            panic!("root must be internal");
        }
    }

    #[test]
    fn first_cut_separates_left_from_right() {
        // 4 sinks on a horizontal line: the x-median must put {0,1} and
        // {2,3} in different halves.
        let sinks: Vec<Sink> = (0..4)
            .map(|i| Sink::new(Point::new(f64::from(i) * 100.0, 0.0), 0.05))
            .collect();
        let topo = mmm_topology(&sinks).unwrap();
        if let crate::TopoNode::Internal { left, right } = topo.node(topo.root()) {
            let members = |node: usize| -> Vec<usize> {
                let mut v = Vec::new();
                let mut stack = vec![node];
                while let Some(i) = stack.pop() {
                    match topo.node(i) {
                        crate::TopoNode::Leaf { sink } => v.push(sink),
                        crate::TopoNode::Internal { left, right } => {
                            stack.push(left);
                            stack.push(right);
                        }
                    }
                }
                v.sort_unstable();
                v
            };
            let (mut a, mut b) = (members(left), members(right));
            if a[0] > b[0] {
                std::mem::swap(&mut a, &mut b);
            }
            assert_eq!(a, vec![0, 1]);
            assert_eq!(b, vec![2, 3]);
        }
    }

    #[test]
    fn odd_counts_and_singletons() {
        for n in [1usize, 2, 3, 5, 7, 13] {
            let topo = mmm_topology(&grid_sinks(n)).unwrap();
            assert_eq!(topo.num_leaves(), n);
            assert_eq!(topo.len(), 2 * n - 1);
        }
        assert!(matches!(mmm_topology(&[]), Err(CtsError::NoSinks)));
    }

    #[test]
    fn embeds_zero_skew() {
        let tech = Technology::default();
        let sinks = grid_sinks(10);
        let topo = mmm_topology(&sinks).unwrap();
        let tree = embed(
            &topo,
            &sinks,
            &tech,
            &DeviceAssignment::none(&topo),
            Point::new(1_500.0, 1_000.0),
        )
        .unwrap();
        let delay = tree.source_to_sink_delay(&tech);
        assert!(tree.verify_skew(&tech) <= 1e-9 * delay.max(1.0));
    }

    #[test]
    fn deterministic_under_duplicates() {
        let mut sinks = grid_sinks(6);
        sinks.push(sinks[0]); // duplicate location
        let a = mmm_topology(&sinks).unwrap();
        let b = mmm_topology(&sinks).unwrap();
        assert_eq!(a, b);
    }
}
