use std::fmt;

use crate::CtsError;

/// One node of a clock-tree [`Topology`]: either a leaf bound to a sink or
/// an internal merge of two earlier nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopoNode {
    /// A leaf; `sink` indexes the caller's sink list.
    Leaf {
        /// Index into the sink list this topology was built for.
        sink: usize,
    },
    /// An internal node merging two children.
    Internal {
        /// Topology index of the first child.
        left: usize,
        /// Topology index of the second child.
        right: usize,
    },
}

/// The *shape* of a clock tree: a full binary merge structure over N sinks,
/// independent of any geometry, device placement or wire lengths.
///
/// Node indexing is canonical: leaves occupy indices `0..N` (leaf `i` is
/// sink `i`), internal nodes occupy `N..2N-1` in creation (bottom-up merge)
/// order, and the root is the last node. Keeping topology separate from
/// embedding is what allows the gate-reduction heuristic to re-balance the
/// same tree with a different device assignment.
///
/// ```
/// use gcr_cts::Topology;
///
/// // ((s0, s1), s2)
/// let topo = Topology::from_merges(3, &[(0, 1), (3, 2)])?;
/// assert_eq!(topo.root(), 4);
/// assert_eq!(topo.num_leaves(), 3);
/// assert_eq!(topo.parents()[0], Some(3));
/// # Ok::<(), gcr_cts::CtsError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    nodes: Vec<TopoNode>,
    num_leaves: usize,
}

impl Topology {
    /// Builds a topology from a bottom-up merge sequence: merge `k` (zero
    /// based) creates node `num_leaves + k` from the two given node
    /// indices.
    ///
    /// # Errors
    ///
    /// Returns [`CtsError::NoSinks`] for `num_leaves == 0` and
    /// [`CtsError::InvalidTopology`] when the sequence is not a valid full
    /// binary tree (wrong merge count, forward references, a node used as
    /// a child twice, or self-merges).
    pub fn from_merges(num_leaves: usize, merges: &[(usize, usize)]) -> Result<Self, CtsError> {
        if num_leaves == 0 {
            return Err(CtsError::NoSinks);
        }
        if merges.len() + 1 != num_leaves {
            return Err(CtsError::InvalidTopology {
                reason: format!(
                    "{num_leaves} leaves need {} merges, got {}",
                    num_leaves - 1,
                    merges.len()
                ),
            });
        }
        let total = 2 * num_leaves - 1;
        let mut nodes: Vec<TopoNode> = (0..num_leaves)
            .map(|sink| TopoNode::Leaf { sink })
            .collect();
        let mut used = vec![false; total];
        for (k, &(left, right)) in merges.iter().enumerate() {
            let this = num_leaves + k;
            for child in [left, right] {
                if child >= this {
                    return Err(CtsError::InvalidTopology {
                        reason: format!("merge {k} references node {child} not yet created"),
                    });
                }
                if used[child] {
                    return Err(CtsError::InvalidTopology {
                        reason: format!("node {child} used as a child twice"),
                    });
                }
                used[child] = true;
            }
            if left == right {
                return Err(CtsError::InvalidTopology {
                    reason: format!("merge {k} merges node {left} with itself"),
                });
            }
            nodes.push(TopoNode::Internal { left, right });
        }
        Ok(Self { nodes, num_leaves })
    }

    /// A degenerate single-sink topology (one leaf, no merges).
    ///
    /// # Errors
    ///
    /// Never fails; returns `Result` for uniformity with
    /// [`Topology::from_merges`].
    pub fn single_sink() -> Result<Self, CtsError> {
        Self::from_merges(1, &[])
    }

    /// Number of leaves (sinks).
    #[must_use]
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Total number of nodes (`2·N − 1`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the topology is empty (never true for a constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node index (always `2·N − 2`).
    #[must_use]
    pub fn root(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The node at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn node(&self, index: usize) -> TopoNode {
        self.nodes[index]
    }

    /// Whether `index` is a leaf.
    #[must_use]
    pub fn is_leaf(&self, index: usize) -> bool {
        matches!(self.nodes[index], TopoNode::Leaf { .. })
    }

    /// Per-node parent indices (`None` for the root).
    #[must_use]
    pub fn parents(&self) -> Vec<Option<usize>> {
        let mut parents = vec![None; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let TopoNode::Internal { left, right } = *n {
                parents[left] = Some(i);
                parents[right] = Some(i);
            }
        }
        parents
    }

    /// Iterates over nodes in bottom-up (children before parents) order —
    /// which is simply index order by construction.
    pub fn bottom_up(&self) -> impl Iterator<Item = (usize, TopoNode)> + '_ {
        self.nodes.iter().copied().enumerate()
    }

    /// Engineering-change insertion: returns a new topology with one more
    /// leaf, paired with the existing leaf of sink `sibling` under a fresh
    /// internal node. The new sink receives index `num_leaves()` (callers
    /// append the new sink to their sink list).
    ///
    /// # Errors
    ///
    /// Returns [`CtsError::InvalidTopology`] when `sibling` is not an
    /// existing sink index.
    pub fn insert_leaf(&self, sibling: usize) -> Result<Topology, CtsError> {
        if sibling >= self.num_leaves {
            return Err(CtsError::InvalidTopology {
                reason: format!(
                    "sibling sink {sibling} out of range ({} sinks)",
                    self.num_leaves
                ),
            });
        }
        let old_n = self.num_leaves;
        let new_n = old_n + 1;
        // Old node index -> new node index: leaves keep their index, the
        // new leaf takes old_n, internals shift by 1, and one fresh
        // internal pairs (sibling, new leaf).
        let remap = |old: usize| -> usize {
            if old < old_n {
                old
            } else {
                old + 2 // new leaf + the fresh internal node
            }
        };
        let fresh = new_n; // first internal index in the new topology
        let mut merges: Vec<(usize, usize)> = vec![(sibling, old_n)];
        for (_, node) in self.bottom_up() {
            if let TopoNode::Internal { left, right } = node {
                let fix = |child: usize| {
                    if child == sibling {
                        fresh
                    } else {
                        remap(child)
                    }
                };
                merges.push((fix(left), fix(right)));
            }
        }
        Topology::from_merges(new_n, &merges)
    }

    /// Engineering-change removal: returns a new topology without sink
    /// `victim`; its former sibling subtree takes the parent's place, and
    /// sink indices above `victim` shift down by one (callers remove the
    /// sink from their list).
    ///
    /// # Errors
    ///
    /// Returns [`CtsError::InvalidTopology`] when `victim` is out of range
    /// or the topology has only one sink left.
    #[expect(
        clippy::expect_used,
        reason = "a leaf in a multi-sink topology always has a parent"
    )]
    pub fn remove_leaf(&self, victim: usize) -> Result<Topology, CtsError> {
        if victim >= self.num_leaves {
            return Err(CtsError::InvalidTopology {
                reason: format!(
                    "victim sink {victim} out of range ({} sinks)",
                    self.num_leaves
                ),
            });
        }
        if self.num_leaves == 1 {
            return Err(CtsError::InvalidTopology {
                reason: "cannot remove the only sink".into(),
            });
        }
        let parents = self.parents();
        let dead_parent = parents[victim].expect("non-root leaf has a parent");
        // In the new topology, the dead parent is replaced by the victim's
        // sibling everywhere it is referenced.
        let sibling = match self.node(dead_parent) {
            TopoNode::Internal { left, right } => {
                if left == victim {
                    right
                } else {
                    left
                }
            }
            TopoNode::Leaf { .. } => unreachable!("parents are internal"),
        };

        // Old index -> new index. Leaves shift down past the victim;
        // internal nodes shift by (leaves removed so far = 1) and by one
        // more after the dead parent; references to the dead parent follow
        // the sibling.
        let old_n = self.num_leaves;
        let remap = |old: usize| -> usize {
            let resolved = if old == dead_parent { sibling } else { old };
            if resolved < old_n {
                resolved - usize::from(resolved > victim)
            } else {
                // Internal: one fewer leaf below, and the dead parent
                // itself disappears from the internal sequence.
                resolved - 1 - usize::from(resolved > dead_parent)
            }
        };
        let merges: Vec<(usize, usize)> = self
            .bottom_up()
            .filter_map(|(i, node)| match node {
                TopoNode::Internal { left, right } if i != dead_parent => {
                    Some((remap(left), remap(right)))
                }
                _ => None,
            })
            .collect();
        Topology::from_merges(old_n - 1, &merges)
    }

    /// The depth of each node (root = 0), and with it the tree height.
    #[must_use]
    pub fn depths(&self) -> Vec<usize> {
        let mut depths = vec![0usize; self.nodes.len()];
        for i in (0..self.nodes.len()).rev() {
            if let TopoNode::Internal { left, right } = self.nodes[i] {
                depths[left] = depths[i] + 1;
                depths[right] = depths[i] + 1;
            }
        }
        depths
    }

    /// The longest root-to-leaf path length (0 for a single sink).
    #[must_use]
    pub fn height(&self) -> usize {
        self.depths().into_iter().max().unwrap_or(0)
    }

    /// The number of sinks underneath each node.
    #[must_use]
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            sizes[i] = match *n {
                TopoNode::Leaf { .. } => 1,
                TopoNode::Internal { left, right } => sizes[left] + sizes[right],
            };
        }
        sizes
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Topology[{} sinks, {} nodes]",
            self.num_leaves,
            self.nodes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_balanced_topology() {
        // ((0,1),(2,3))
        let t = Topology::from_merges(4, &[(0, 1), (2, 3), (4, 5)]).unwrap();
        assert_eq!(t.len(), 7);
        assert_eq!(t.root(), 6);
        assert_eq!(t.subtree_sizes()[6], 4);
        assert_eq!(t.subtree_sizes()[4], 2);
        let parents = t.parents();
        assert_eq!(parents[4], Some(6));
        assert_eq!(parents[6], None);
        assert!(t.is_leaf(0) && !t.is_leaf(4));
    }

    #[test]
    fn depths_and_height() {
        let balanced = Topology::from_merges(4, &[(0, 1), (2, 3), (4, 5)]).unwrap();
        assert_eq!(balanced.height(), 2);
        assert_eq!(balanced.depths()[6], 0);
        assert_eq!(balanced.depths()[0], 2);
        let chain = Topology::from_merges(4, &[(0, 1), (4, 2), (5, 3)]).unwrap();
        assert_eq!(chain.height(), 3);
        assert_eq!(Topology::single_sink().unwrap().height(), 0);
    }

    #[test]
    fn chain_topology() {
        // (((0,1),2),3)
        let t = Topology::from_merges(4, &[(0, 1), (4, 2), (5, 3)]).unwrap();
        assert_eq!(t.subtree_sizes(), vec![1, 1, 1, 1, 2, 3, 4]);
    }

    #[test]
    fn single_sink_topology() {
        let t = Topology::single_sink().unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.root(), 0);
        assert!(t.is_leaf(0));
    }

    #[test]
    fn wrong_merge_count_rejected() {
        let e = Topology::from_merges(3, &[(0, 1)]).unwrap_err();
        assert!(matches!(e, CtsError::InvalidTopology { .. }));
    }

    #[test]
    fn forward_reference_rejected() {
        let e = Topology::from_merges(3, &[(0, 3), (1, 2)]).unwrap_err();
        assert!(e.to_string().contains("not yet created"));
    }

    #[test]
    fn double_use_rejected() {
        let e = Topology::from_merges(3, &[(0, 1), (0, 2)]).unwrap_err();
        assert!(e.to_string().contains("twice"));
    }

    #[test]
    fn self_merge_rejected() {
        let e = Topology::from_merges(3, &[(0, 0), (3, 2)]).unwrap_err();
        // Double-use triggers first for (0, 0); both are invalid topologies.
        assert!(matches!(e, CtsError::InvalidTopology { .. }));
    }

    #[test]
    fn zero_leaves_rejected() {
        assert_eq!(
            Topology::from_merges(0, &[]).unwrap_err(),
            CtsError::NoSinks
        );
    }

    #[test]
    fn display_is_nonempty() {
        let t = Topology::single_sink().unwrap();
        assert!(format!("{t}").contains("1 sinks"));
    }

    #[test]
    fn insert_leaf_grows_by_one() {
        let t = Topology::from_merges(4, &[(0, 1), (2, 3), (4, 5)]).unwrap();
        let grown = t.insert_leaf(2).unwrap();
        assert_eq!(grown.num_leaves(), 5);
        assert_eq!(grown.len(), 9);
        // The fresh internal node pairs sink 2 with the new sink 4.
        assert_eq!(grown.node(5), TopoNode::Internal { left: 2, right: 4 });
        // Structure is preserved: subtree sizes at the root telescope.
        assert_eq!(grown.subtree_sizes()[grown.root()], 5);
        // Old sink 2's former parent now owns the fresh internal node.
        let parents = grown.parents();
        assert_eq!(parents[5], parents[3].map(|_| parents[5].unwrap()));
    }

    #[test]
    fn insert_leaf_into_single_sink() {
        let t = Topology::single_sink().unwrap();
        let grown = t.insert_leaf(0).unwrap();
        assert_eq!(grown.num_leaves(), 2);
        assert_eq!(
            grown.node(grown.root()),
            TopoNode::Internal { left: 0, right: 1 }
        );
    }

    #[test]
    fn remove_leaf_shrinks_by_one() {
        // ((0,1),(2,3)) — removing sink 1 leaves (0,(2,3)) with sinks
        // renumbered to 0,1,2.
        let t = Topology::from_merges(4, &[(0, 1), (2, 3), (4, 5)]).unwrap();
        let shrunk = t.remove_leaf(1).unwrap();
        assert_eq!(shrunk.num_leaves(), 3);
        assert_eq!(shrunk.len(), 5);
        assert_eq!(shrunk.subtree_sizes()[shrunk.root()], 3);
        // Old sinks 2,3 are now 1,2 and still share a parent.
        let parents = shrunk.parents();
        assert_eq!(parents[1], parents[2]);
        // Old sink 0 hangs directly off the root.
        assert_eq!(parents[0], Some(shrunk.root()));
    }

    #[test]
    fn remove_then_insert_round_trips_size() {
        let t = Topology::from_merges(5, &[(0, 1), (2, 3), (5, 4), (6, 7)]).unwrap();
        for victim in 0..5 {
            let shrunk = t.remove_leaf(victim).unwrap();
            assert_eq!(shrunk.num_leaves(), 4);
            let grown = shrunk.insert_leaf(0).unwrap();
            assert_eq!(grown.num_leaves(), 5);
        }
    }

    #[test]
    fn remove_leaf_edge_cases() {
        let pair = Topology::from_merges(2, &[(0, 1)]).unwrap();
        let single = pair.remove_leaf(0).unwrap();
        assert_eq!(single.num_leaves(), 1);
        assert!(single.remove_leaf(0).is_err()); // cannot empty the tree
        assert!(pair.remove_leaf(5).is_err());
    }

    #[test]
    fn insert_leaf_rejects_bad_sibling() {
        let t = Topology::from_merges(2, &[(0, 1)]).unwrap();
        assert!(t.insert_leaf(2).is_err());
        assert!(t.insert_leaf(usize::MAX).is_err());
    }
}
