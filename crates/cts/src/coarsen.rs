//! Hierarchical region coarsening for large sink sets.
//!
//! The flat greedy engine is quadratic-ish in practice once the instance
//! outgrows its pruning radius; at 10⁵–10⁶ sinks even the pruned
//! best-first loop spends most of its time re-flooding enormous live
//! sets. This module makes such instances tractable with the classic
//! regional decomposition (cf. "Regional Clock Tree Generation by
//! Abutment"): partition the sinks into geometric regions of roughly
//! [`CoarsenParams::target_region_size`] members, build each region's
//! subtree with the **unchanged pruned greedy engine**, then merge the
//! region roots with the exhaustive engine — a few hundred roots, where
//! exhaustive search is both trivial and exactly the paper's loop.
//!
//! # Exactness caveat
//!
//! Unlike the pruned flat engine — which is *bit-identical* to the
//! exhaustive reference — coarsening is a heuristic: a sink near a region
//! border can only merge across that border at the root level, so the
//! committed merges may differ from the flat greedy's. What **is**
//! preserved:
//!
//! * every committed merge is an exact-cost zero-skew merge under the
//!   same objective (regions see bit-identical leaf states);
//! * the run is deterministic: the partition, the per-region runs, the
//!   replay order, and the root-level merge are all independent of the
//!   worker-thread count, so decision logs are bit-identical across
//!   `GCR_THREADS` settings;
//! * the merge loops stay allocation-free on warm scratches — the
//!   aggregated [`GreedyProfile::loop_allocs`] counts every constituent
//!   engine's loop phase (orchestration work — partitioning, local
//!   objective construction, result collection — happens outside the
//!   loop windows, like any seed phase).
//!
//! # Determinism & replay
//!
//! Regions are solved on worker threads against **local** objectives
//! (local node `i` = the region's `i`-th member, ascending), each worker
//! reusing its own [`GreedyScratch`]. The local decision logs are then
//! replayed *sequentially, in region order* into the global objective,
//! assigning global node ids in replay order. The local→global node map
//! is strictly monotone (members ascend; internals are created in local
//! order), so the canonical `a < b` orientation of every local decision
//! survives the translation, and the global log passes the `gcr-verify`
//! determinism pass unchanged.

use gcr_geometry::Point;
use gcr_trace::Tracer;

use crate::greedy::{
    resolve_threads, run_greedy_exhaustive_with_scratch, run_greedy_with_scratch_traced,
    GreedyParams, GreedyProfile, GreedyScratch, GreedyStats, MergeDecision, MergeObjective,
};
use crate::{CtsError, Topology};

/// Tuning knobs of a coarsened run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoarsenParams {
    /// Worker threads and decision logging, shared with the constituent
    /// engine runs. Threads resolve exactly as in the flat engine
    /// (explicit, then `GCR_THREADS`, then available parallelism).
    pub greedy: GreedyParams,
    /// Aimed-for sinks per region; `0` picks [`DEFAULT_REGION_SIZE`].
    /// Instances below twice this size skip coarsening entirely and run
    /// the flat pruned engine.
    pub target_region_size: usize,
}

/// Default [`CoarsenParams::target_region_size`]: large enough that a
/// region amortizes its seed phase, small enough that every in-region
/// candidate batch stays below the engine's parallel-fan-out threshold —
/// region-level parallelism comes from solving regions concurrently, not
/// from sharding inside one region.
pub const DEFAULT_REGION_SIZE: usize = 2_048;

impl CoarsenParams {
    fn region_size(&self) -> usize {
        if self.target_region_size == 0 {
            DEFAULT_REGION_SIZE
        } else {
            self.target_region_size
        }
    }
}

/// Reusable buffers of [`run_greedy_coarsened`]: one [`GreedyScratch`]
/// per worker slot for the region runs, one for the flat fallback and
/// the root-level merge, plus the replay buffers. Reusing one across
/// runs keeps every constituent merge loop allocation-free.
#[derive(Debug, Default)]
pub struct CoarsenScratch {
    /// Per-worker scratches for the parallel region runs.
    region: Vec<GreedyScratch>,
    /// Per-worker persistent result slabs (see [`WorkerLog`]).
    worker_logs: Vec<WorkerLog>,
    /// Scratch of the root-level merge (and of the flat fallback path).
    top: GreedyScratch,
    /// Local→global node map of the region currently being replayed.
    map: Vec<u32>,
    /// Global merge list, in commit order.
    merges: Vec<(usize, usize)>,
    /// Global decision log of the last run (under
    /// [`GreedyParams::log_decisions`]).
    decisions: Vec<MergeDecision>,
}

impl CoarsenScratch {
    /// Creates an empty scratch. Buffers grow on first use and are then
    /// reused.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The decision log of the most recent coarsened run — empty unless
    /// that run set [`GreedyParams::log_decisions`].
    #[must_use]
    pub fn decisions(&self) -> &[MergeDecision] {
        &self.decisions
    }

    /// Takes ownership of the last run's decision log.
    #[must_use]
    pub fn take_decisions(&mut self) -> Vec<MergeDecision> {
        std::mem::take(&mut self.decisions)
    }
}

/// Partitions `locations` into geometric regions of roughly `target`
/// members: a `k × k` grid over the bounding box with
/// `k = ⌈√(n / target)⌉`, cells emitted in row-major order, empty cells
/// dropped, members ascending within each region. Degenerate extents
/// (coincident or collinear points, non-finite coordinates) collapse the
/// affected axis to a single row or column — the result is always a
/// partition of `0..locations.len()`.
///
/// The partition is a pure function of the locations and `target` —
/// no thread count, no hash order — which is the root of the coarsened
/// flow's cross-thread determinism.
#[must_use]
pub fn partition_regions(locations: &[Point], target: usize) -> Vec<Vec<u32>> {
    let n = locations.len();
    if n == 0 {
        return Vec::new();
    }
    let target = target.max(1);
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let k = ((n as f64 / target as f64).sqrt().ceil() as usize).max(1);
    let mut min = Point::new(f64::INFINITY, f64::INFINITY);
    let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in locations {
        min = Point::new(min.x.min(p.x), min.y.min(p.y));
        max = Point::new(max.x.max(p.x), max.y.max(p.y));
    }
    let axis_cells = |lo: f64, hi: f64| -> usize {
        let extent = hi - lo;
        if extent.is_finite() && extent > 0.0 {
            k
        } else {
            1
        }
    };
    let (kx, ky) = (axis_cells(min.x, max.x), axis_cells(min.y, max.y));
    let cell_index = |v: f64, lo: f64, hi: f64, cells: usize| -> usize {
        if cells == 1 {
            return 0;
        }
        let t = (v - lo) / (hi - lo) * cells as f64;
        if t.is_finite() && t > 0.0 {
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let i = t as usize;
            i.min(cells - 1)
        } else {
            0
        }
    };
    let mut cells: Vec<Vec<u32>> = vec![Vec::new(); kx * ky];
    for (i, p) in locations.iter().enumerate() {
        let cx = cell_index(p.x, min.x, max.x, kx);
        let cy = cell_index(p.y, min.y, max.y, ky);
        cells[cy * kx + cx].push(i as u32);
    }
    cells.retain(|c| !c.is_empty());
    cells
}

/// One worker's persistent result slab: every region it solved, as rows
/// into a single flat decision vector, plus its pre-aggregated counters.
///
/// Living in [`CoarsenScratch`] rather than per-region heap boxes, the
/// slab rows are appended in place and keep their capacity across runs —
/// workers stop contending on the shared allocator for per-region
/// decision copies, and the warm coarsened loop sheds one allocation per
/// region per run. Worker `w` visits regions `w, w + W, …` in ascending
/// order, so the orchestrator replays regions in global order by walking
/// one cursor per worker.
#[derive(Debug, Default)]
struct WorkerLog {
    /// Region decision logs, concatenated in this worker's visit order.
    decisions: Vec<MergeDecision>,
    /// `(region, start, len)` row per visited region (len 0 for
    /// single-sink regions, which need no merges).
    rows: Vec<(u32, u32, u32)>,
    /// Search counters summed over this worker's regions.
    stats: GreedyStats,
    /// Engine profile summed over this worker's regions.
    profile: GreedyProfile,
}

impl WorkerLog {
    /// Rewinds the slab for a new run, keeping row capacity.
    fn reset(&mut self) {
        self.decisions.clear();
        self.rows.clear();
        self.stats = GreedyStats::default();
        self.profile = GreedyProfile::default();
    }
}

/// Root-level view of the global objective: local node `i` is
/// `map[i]` in the global index space. Pairs are canonicalized to
/// ascending *global* order before touching the inner objective (the
/// region roots are not monotone in region order — a single-sink region's
/// root is its leaf — so local order does not imply global order), which
/// keeps the executed merges, and the decision log built from them, in
/// the canonical `a < b` orientation the determinism pass requires.
struct RootObjective<'a, O: MergeObjective> {
    inner: &'a mut O,
    /// Local node → global node.
    map: Vec<u32>,
    /// Next unused global node id.
    next_global: usize,
}

impl<O: MergeObjective> RootObjective<'_, O> {
    fn pair(&self, a: usize, b: usize) -> (usize, usize) {
        let (ga, gb) = (self.map[a] as usize, self.map[b] as usize);
        if ga < gb {
            (ga, gb)
        } else {
            (gb, ga)
        }
    }
}

impl<O: MergeObjective> MergeObjective for RootObjective<'_, O> {
    fn cost(&self, a: usize, b: usize) -> f64 {
        let (x, y) = self.pair(a, b);
        self.inner.cost(x, y)
    }

    fn cost_lower_bound(&self, a: usize, b: usize) -> f64 {
        let (x, y) = self.pair(a, b);
        self.inner.cost_lower_bound(x, y)
    }

    fn cost_lower_bound_at_distance(&self, node: usize, dist: f64) -> f64 {
        self.inner
            .cost_lower_bound_at_distance(self.map[node] as usize, dist)
    }

    fn location(&self, node: usize) -> Point {
        self.inner.location(self.map[node] as usize)
    }

    fn merge(&mut self, a: usize, b: usize, k: usize) -> Result<(), CtsError> {
        debug_assert_eq!(k, self.map.len());
        let (x, y) = self.pair(a, b);
        self.inner.merge(x, y, self.next_global)?;
        self.map.push(self.next_global as u32);
        self.next_global += 1;
        Ok(())
    }
}

/// [`run_greedy_coarsened_traced`] without tracing.
///
/// # Errors
///
/// As [`run_greedy_coarsened_traced`].
pub fn run_greedy_coarsened<O, R, F>(
    num_leaves: usize,
    objective: &mut O,
    region_objective: F,
    params: &CoarsenParams,
    scratch: &mut CoarsenScratch,
) -> Result<(Topology, GreedyStats, GreedyProfile), CtsError>
where
    O: MergeObjective,
    R: MergeObjective,
    F: Fn(&[u32]) -> R + Sync,
{
    run_greedy_coarsened_traced(
        num_leaves,
        objective,
        region_objective,
        params,
        scratch,
        &Tracer::disabled(),
    )
}

/// Builds a topology over `num_leaves` sinks by hierarchical region
/// coarsening (see the module docs for the flow and its guarantees).
///
/// `objective` is the **global** objective — it ends the run having
/// merged every internal node, exactly as after a flat run.
/// `region_objective(members)` must build a *local* objective over the
/// given ascending global sink indices whose leaf states are
/// bit-identical to the global objective's (same technology, tables and
/// module mapping restricted to the subset); region merges are then
/// replayed into the global objective verbatim.
///
/// Instances smaller than twice the target region size (or whose
/// partition collapses to one region) run the flat pruned engine — same
/// results, same decision log, none of the coarsening caveats.
///
/// Emits `coarsen.partition` / `coarsen.regions` / `coarsen.replay` /
/// `coarsen.top` phase spans under a `coarsen.run` span when `tracer`
/// is enabled.
///
/// # Errors
///
/// As [`run_greedy`](crate::run_greedy), for any constituent engine run
/// or replayed merge.
///
/// # Panics
///
/// Panics if an objective returns a NaN cost or bound, or if a region
/// worker panics.
#[expect(
    clippy::expect_used,
    reason = "a panicking region worker must propagate, not be swallowed"
)]
#[expect(
    clippy::too_many_lines,
    reason = "one function per engine flow, like the flat engines"
)]
pub fn run_greedy_coarsened_traced<O, R, F>(
    num_leaves: usize,
    objective: &mut O,
    region_objective: F,
    params: &CoarsenParams,
    scratch: &mut CoarsenScratch,
    tracer: &Tracer,
) -> Result<(Topology, GreedyStats, GreedyProfile), CtsError>
where
    O: MergeObjective,
    R: MergeObjective,
    F: Fn(&[u32]) -> R + Sync,
{
    let flat_params = GreedyParams {
        threads: params.greedy.threads,
        log_decisions: params.greedy.log_decisions,
    };
    if num_leaves < 2 * params.region_size() {
        let out = run_greedy_with_scratch_traced(
            num_leaves,
            objective,
            &flat_params,
            &mut scratch.top,
            tracer,
        )?;
        scratch.decisions.clear();
        scratch.decisions.extend_from_slice(scratch.top.decisions());
        return Ok(out);
    }

    let _run = tracer.span("coarsen.run");
    let threads = resolve_threads(&params.greedy, tracer);

    // Partition over the leaf locations (pure function of the input).
    let part_start = tracer.now_ns();
    let t0 = std::time::Instant::now();
    let locations: Vec<Point> = (0..num_leaves).map(|i| objective.location(i)).collect();
    let regions = partition_regions(&locations, params.region_size());
    drop(locations);
    tracer.complete_span("coarsen.partition", part_start, elapsed_ns(t0.elapsed()));
    if regions.len() <= 1 {
        let out = run_greedy_with_scratch_traced(
            num_leaves,
            objective,
            &flat_params,
            &mut scratch.top,
            tracer,
        )?;
        scratch.decisions.clear();
        scratch.decisions.extend_from_slice(scratch.top.decisions());
        return Ok(out);
    }

    // Solve every region on the worker pool: worker `w` takes regions
    // `w, w + W, …` with its own scratch and a fresh local objective per
    // region. Regions run single-threaded (their batches are too small
    // to fan out profitably) and always log decisions — the log *is* the
    // replay script. Assignment striping affects only which worker
    // computes a region, never its result.
    let regions_start = tracer.now_ns();
    let t0 = std::time::Instant::now();
    let workers = threads.min(regions.len());
    if scratch.region.len() < workers {
        scratch.region.resize_with(workers, GreedyScratch::new);
    }
    if scratch.worker_logs.len() < workers {
        scratch.worker_logs.resize_with(workers, WorkerLog::default);
    }
    let region_params = GreedyParams {
        threads: Some(1),
        log_decisions: true,
    };
    let region_objective = &region_objective;
    let regions_ref = &regions;
    let worker_outs: Vec<Result<(), CtsError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = scratch
            .region
            .iter_mut()
            .zip(scratch.worker_logs.iter_mut())
            .take(workers)
            .enumerate()
            .map(|(w, (region_scratch, log))| {
                scope.spawn(move || {
                    log.reset();
                    for r in (w..regions_ref.len()).step_by(workers) {
                        let members = &regions_ref[r];
                        if members.len() == 1 {
                            log.rows.push((r as u32, log.decisions.len() as u32, 0));
                            continue;
                        }
                        let mut local = region_objective(members);
                        let (_, stats, profile) = run_greedy_with_scratch_traced(
                            members.len(),
                            &mut local,
                            &region_params,
                            region_scratch,
                            &Tracer::disabled(),
                        )?;
                        let start = log.decisions.len() as u32;
                        log.decisions.extend_from_slice(region_scratch.decisions());
                        log.rows
                            .push((r as u32, start, log.decisions.len() as u32 - start));
                        add_stats(&mut log.stats, &stats);
                        add_profile(&mut log.profile, &profile);
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("region worker panicked"))
            .collect()
    });
    for worker_out in worker_outs {
        worker_out?;
    }
    let mut stats = GreedyStats::default();
    let mut profile = GreedyProfile::default();
    for log in scratch.worker_logs.iter().take(workers) {
        add_stats(&mut stats, &log.stats);
        add_profile(&mut profile, &log.profile);
    }
    tracer.complete_span("coarsen.regions", regions_start, elapsed_ns(t0.elapsed()));

    // Sequential replay into the global objective, in region order.
    let replay_start = tracer.now_ns();
    let t0 = std::time::Instant::now();
    scratch.merges.clear();
    scratch.decisions.clear();
    let mut next_global = num_leaves;
    // Sized for the root-level merge up front: `RootObjective::merge`
    // pushes one map entry per merge, and a mid-loop reallocation would
    // show up in the engine's `loop_allocs` profile.
    let mut roots: Vec<u32> = Vec::with_capacity(2 * regions.len() - 1);
    // Regions replay in global order by walking each worker's slab rows
    // with a cursor — worker `r % workers` solved region `r`, and its
    // rows are in ascending region order.
    let mut cursor = vec![0usize; workers];
    for (r, members) in regions.iter().enumerate() {
        let log = &scratch.worker_logs[r % workers];
        let (row_region, start, len) = log.rows[cursor[r % workers]];
        cursor[r % workers] += 1;
        debug_assert_eq!(row_region as usize, r, "slab rows must follow visit order");
        if members.len() == 1 {
            debug_assert_eq!(len, 0);
            roots.push(members[0]);
            continue;
        }
        scratch.map.clear();
        scratch.map.extend_from_slice(members);
        for d in &log.decisions[start as usize..(start + len) as usize] {
            let (ga, gb) = (
                scratch.map[d.a as usize] as usize,
                scratch.map[d.b as usize] as usize,
            );
            debug_assert!(ga < gb, "monotone map must preserve orientation");
            objective.merge(ga, gb, next_global)?;
            scratch.merges.push((ga, gb));
            if params.greedy.log_decisions {
                scratch.decisions.push(MergeDecision {
                    a: ga as u32,
                    b: gb as u32,
                    node: next_global as u32,
                    key_bits: d.key_bits,
                });
            }
            scratch.map.push(next_global as u32);
            next_global += 1;
        }
        roots.push(scratch.map[scratch.map.len() - 1]);
    }
    tracer.complete_span("coarsen.replay", replay_start, elapsed_ns(t0.elapsed()));

    // Merge the region roots with the exhaustive engine — a few hundred
    // roots, so all-pairs evaluation is cheap, and it needs nothing from
    // the objective beyond exact costs (no bound admissibility at the
    // root level, where merging regions are wide).
    let top_start = tracer.now_ns();
    let t0 = std::time::Instant::now();
    let num_roots = roots.len();
    let mut top = RootObjective {
        inner: objective,
        map: roots,
        next_global,
    };
    let top_params = GreedyParams {
        threads: Some(threads),
        log_decisions: true,
    };
    let (_, top_stats, top_profile) =
        run_greedy_exhaustive_with_scratch(num_roots, &mut top, &top_params, &mut scratch.top)?;
    add_stats(&mut stats, &top_stats);
    add_profile(&mut profile, &top_profile);
    let map = top.map;
    for d in scratch.top.decisions() {
        let (ga, gb) = (map[d.a as usize], map[d.b as usize]);
        let (ga, gb) = if ga < gb { (ga, gb) } else { (gb, ga) };
        scratch.merges.push((ga as usize, gb as usize));
        if params.greedy.log_decisions {
            scratch.decisions.push(MergeDecision {
                a: ga,
                b: gb,
                node: map[d.node as usize],
                key_bits: d.key_bits,
            });
        }
    }
    tracer.complete_span("coarsen.top", top_start, elapsed_ns(t0.elapsed()));

    Ok((
        Topology::from_merges(num_leaves, &scratch.merges)?,
        stats,
        profile,
    ))
}

fn add_stats(acc: &mut GreedyStats, s: &GreedyStats) {
    acc.exact_cost_evals += s.exact_cost_evals;
    acc.bound_evals += s.bound_evals;
    acc.ring_expansions += s.ring_expansions;
    acc.heap_pops += s.heap_pops;
    acc.bound_batches += s.bound_batches;
    acc.bounds_filtered += s.bounds_filtered;
}

fn add_profile(acc: &mut GreedyProfile, p: &GreedyProfile) {
    acc.seed_ms += p.seed_ms;
    acc.loop_ms += p.loop_ms;
    acc.seed_allocs += p.seed_allocs;
    acc.loop_allocs += p.loop_allocs;
}

/// A duration as saturating `u64` nanoseconds.
fn elapsed_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_greedy_with_scratch;

    /// Objective over plain points: cost = Manhattan distance, a merge
    /// creates the midpoint (the greedy test objective, subset-closed:
    /// a local instance over any member set has bit-identical leaf
    /// states).
    #[derive(Clone)]
    struct PointObjective {
        points: Vec<Point>,
    }

    impl MergeObjective for PointObjective {
        fn cost(&self, a: usize, b: usize) -> f64 {
            self.points[a].manhattan(self.points[b])
        }
        fn cost_lower_bound(&self, a: usize, b: usize) -> f64 {
            self.cost(a, b)
        }
        fn cost_lower_bound_at_distance(&self, _node: usize, dist: f64) -> f64 {
            dist
        }
        fn location(&self, node: usize) -> Point {
            self.points[node]
        }
        fn merge(&mut self, a: usize, b: usize, k: usize) -> Result<(), CtsError> {
            assert_eq!(k, self.points.len());
            let mid = self.points[a].midpoint(self.points[b]);
            self.points.push(mid);
            Ok(())
        }
    }

    fn scatter(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(((i * 131) % 10_007) as f64, ((i * 197) % 9_973) as f64))
            .collect()
    }

    fn region_factory(points: &[Point]) -> impl Fn(&[u32]) -> PointObjective + Sync + '_ {
        move |members: &[u32]| PointObjective {
            points: members.iter().map(|&i| points[i as usize]).collect(),
        }
    }

    fn coarse_params(target: usize) -> CoarsenParams {
        CoarsenParams {
            greedy: GreedyParams {
                threads: Some(2),
                log_decisions: true,
            },
            target_region_size: target,
        }
    }

    #[test]
    fn partition_covers_every_point_exactly_once() {
        let points = scatter(500);
        let regions = partition_regions(&points, 50);
        assert!(regions.len() > 1);
        let mut seen = vec![false; points.len()];
        for region in &regions {
            assert!(!region.is_empty());
            let mut prev = None;
            for &m in region {
                assert!(!seen[m as usize], "point {m} in two regions");
                seen[m as usize] = true;
                assert!(prev.is_none_or(|p| p < m), "members must ascend");
                prev = Some(m);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn partition_handles_degenerate_extents() {
        // Coincident points: one region.
        let coincident = vec![Point::new(7.0, 7.0); 40];
        assert_eq!(partition_regions(&coincident, 8).len(), 1);
        // Collinear points: the degenerate axis collapses to one row.
        let line: Vec<Point> = (0..60).map(|i| Point::new(f64::from(i), 0.0)).collect();
        let regions = partition_regions(&line, 10);
        assert!(regions.len() > 1);
        assert_eq!(regions.iter().map(Vec::len).sum::<usize>(), 60);
        // Empty input.
        assert!(partition_regions(&[], 8).is_empty());
    }

    #[test]
    fn small_instances_fall_back_to_the_flat_engine() {
        let points = scatter(60);
        let params = coarse_params(256); // 60 < 2 * 256
        let mut flat_obj = PointObjective {
            points: points.clone(),
        };
        let mut flat_scratch = GreedyScratch::new();
        let flat_params = GreedyParams {
            threads: Some(2),
            log_decisions: true,
        };
        let (flat, _, _) =
            run_greedy_with_scratch(60, &mut flat_obj, &flat_params, &mut flat_scratch).unwrap();
        let mut obj = PointObjective {
            points: points.clone(),
        };
        let mut scratch = CoarsenScratch::new();
        let (topo, _, _) =
            run_greedy_coarsened(60, &mut obj, region_factory(&points), &params, &mut scratch)
                .unwrap();
        assert_eq!(topo, flat);
        assert_eq!(scratch.decisions(), flat_scratch.decisions());
    }

    #[test]
    fn coarsened_run_builds_a_valid_deterministic_topology() {
        let points = scatter(700);
        let params = coarse_params(64);
        let run = |threads: usize| {
            let mut obj = PointObjective {
                points: points.clone(),
            };
            let mut scratch = CoarsenScratch::new();
            let mut p = params;
            p.greedy.threads = Some(threads);
            let (topo, stats, _) =
                run_greedy_coarsened(700, &mut obj, region_factory(&points), &p, &mut scratch)
                    .unwrap();
            (topo, stats, scratch.take_decisions(), obj)
        };
        let (topo, stats, log, obj) = run(1);
        assert_eq!(topo.num_leaves(), 700);
        assert_eq!(topo.len(), 2 * 700 - 1);
        assert_eq!(topo.subtree_sizes()[topo.root()], 700);
        assert!(stats.exact_cost_evals > 0);
        assert_eq!(log.len(), 699, "one decision per merge");
        for (i, d) in log.iter().enumerate() {
            assert_eq!(d.node as usize, 700 + i, "nodes created in order");
            assert!(d.a < d.b && d.b < d.node, "canonical orientation");
            assert!(d.key().is_finite());
        }
        // The global objective saw every merge: its point store covers
        // the full node range.
        assert_eq!(obj.points.len(), 2 * 700 - 1);
        // Bit-identical decisions at any worker count.
        for threads in [2, 4, 8] {
            let (topo_t, _, log_t, _) = run(threads);
            assert_eq!(topo_t, topo, "{threads} threads changed the topology");
            assert_eq!(log_t, log, "{threads} threads changed the decision log");
        }
    }

    #[test]
    fn warm_coarsened_scratch_reuses_buffers() {
        let points = scatter(600);
        let params = coarse_params(64);
        let mut scratch = CoarsenScratch::new();
        let run = |scratch: &mut CoarsenScratch| {
            let mut obj = PointObjective {
                points: points.clone(),
            };
            run_greedy_coarsened(600, &mut obj, region_factory(&points), &params, scratch)
                .unwrap()
                .0
        };
        let cold = run(&mut scratch);
        let warm = run(&mut scratch);
        assert_eq!(cold, warm, "scratch reuse must not change results");
    }

    /// Coincident sink clusters (degenerate region extents) route fine:
    /// the per-region bucket grids collapse to single cells and the
    /// clamped cell size keeps their dimensions finite.
    #[test]
    fn coarsened_run_survives_coincident_clusters() {
        let mut points = Vec::new();
        for c in 0..6 {
            let base = Point::new(f64::from(c) * 1_000.0, f64::from(c % 2) * 1_000.0);
            points.extend(std::iter::repeat_n(base, 40));
        }
        let params = coarse_params(16);
        let mut obj = PointObjective {
            points: points.clone(),
        };
        let mut scratch = CoarsenScratch::new();
        let (topo, _, _) = run_greedy_coarsened(
            points.len(),
            &mut obj,
            region_factory(&points),
            &params,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(topo.num_leaves(), 240);
    }
}
