//! Rectilinear realization of the embedded tree's edges.
//!
//! The embedder records each edge's *electrical* length, which may exceed
//! the Manhattan distance between its placed endpoints (wire snaking for
//! delay balancing). This module turns every edge into a concrete
//! axis-parallel polyline whose length equals the electrical length
//! exactly: an L-shape for the geometric part plus, when needed, a
//! trombone detour for the snaked excess — what a detailed router would
//! hand to the fab.

use gcr_geometry::Point;

use crate::{ClockTree, TreeId};

/// One realized edge: an axis-parallel polyline from the parent's location
/// to the child's.
#[derive(Clone, Debug, PartialEq)]
pub struct RoutedEdge {
    /// The child node this edge feeds (the polyline runs parent → child).
    pub child: TreeId,
    /// Polyline vertices, starting at the parent location and ending at
    /// the child location; consecutive points differ in exactly one
    /// coordinate.
    pub points: Vec<Point>,
}

impl RoutedEdge {
    /// Total polyline length.
    #[must_use]
    pub fn length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].manhattan(w[1])).sum()
    }

    /// Whether every segment is axis-parallel.
    #[must_use]
    pub fn is_rectilinear(&self) -> bool {
        self.points.windows(2).all(|w| {
            let dx = (w[0].x - w[1].x).abs();
            let dy = (w[0].y - w[1].y).abs();
            dx < 1e-9 || dy < 1e-9
        })
    }
}

/// Realizes every edge of the tree as a rectilinear polyline whose length
/// equals the edge's electrical length (L-route plus a trombone detour for
/// snaked wire).
///
/// ```
/// use gcr_cts::{build_buffered_tree, realize_routes, Sink};
/// use gcr_geometry::Point;
/// use gcr_rctree::Technology;
///
/// let tech = Technology::default();
/// let sinks = vec![
///     Sink::new(Point::new(0.0, 0.0), 0.05),
///     Sink::new(Point::new(600.0, 300.0), 0.05),
/// ];
/// let tree = build_buffered_tree(&tech, &sinks, Point::new(300.0, 0.0))?;
/// let routes = realize_routes(&tree);
/// assert_eq!(routes.len(), tree.len() - 1);
/// assert!(routes.iter().all(|r| r.is_rectilinear()));
/// # Ok::<(), gcr_cts::CtsError>(())
/// ```
///
/// Edges of zero electrical length (coincident endpoints) produce a
/// two-point degenerate polyline.
#[must_use]
pub fn realize_routes(tree: &ClockTree) -> Vec<RoutedEdge> {
    tree.ids()
        .filter_map(|id| {
            let node = tree.node(id);
            let parent = node.parent()?;
            let a = tree.node(parent).location();
            let b = node.location();
            Some(RoutedEdge {
                child: id,
                points: route_edge(a, b, node.electrical_length()),
            })
        })
        .collect()
}

/// An axis-parallel polyline from `a` to `b` of total length `target`
/// (≥ the Manhattan distance, within rounding).
#[expect(
    clippy::expect_used,
    reason = "the base L-route always has at least one segment"
)]
fn route_edge(a: Point, b: Point, target: f64) -> Vec<Point> {
    let dist = a.manhattan(b);
    let extra = (target - dist).max(0.0);

    // Base L-route: horizontal first, then vertical.
    let corner = Point::new(b.x, a.y);
    let mut pts = vec![a];
    if (a.x - b.x).abs() > 1e-9 && (a.y - b.y).abs() > 1e-9 {
        pts.push(corner);
    }
    pts.push(b);

    if extra <= 1e-9 {
        return pts;
    }

    // Trombone: replace the midpoint of the longest segment with a U
    // detour of depth `extra / 2`, perpendicular to the segment. Total
    // added length is exactly 2 × depth.
    let depth = extra / 2.0;
    let (seg, seg_len) = pts
        .windows(2)
        .enumerate()
        .map(|(i, w)| (i, w[0].manhattan(w[1])))
        .max_by(|x, y| x.1.total_cmp(&y.1))
        .expect("polyline has at least one segment");
    let (p, q) = (pts[seg], pts[seg + 1]);
    let mid = p.midpoint(q);
    let horizontal = (p.y - q.y).abs() < 1e-9;
    // Perpendicular offset direction: +y for horizontal runs, +x for
    // vertical ones.
    let (u1, u2) = if horizontal {
        (Point::new(mid.x, mid.y + depth), Point::new(mid.x, mid.y))
    } else {
        (Point::new(mid.x + depth, mid.y), Point::new(mid.x, mid.y))
    };
    // Even a zero-length base segment (p == q) works: the U degenerates to
    // out-and-back at the shared point.
    let mut routed = Vec::with_capacity(pts.len() + 3);
    routed.extend_from_slice(&pts[..=seg]);
    routed.push(u2); // enter the detour at the segment midpoint
    routed.push(u1); // out…
    routed.push(u2); // …and back
    routed.extend_from_slice(&pts[seg + 1..]);
    // `seg_len` unused beyond selection; silence the tuple.
    let _ = seg_len;
    routed
}

/// Serializes realized routes in a simple interchange format: one line per
/// edge, `edge <child-index>: (x y) (x y) …` — trivially parseable and
/// diff-friendly for golden tests.
#[must_use]
pub fn format_routes(routes: &[RoutedEdge]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in routes {
        let _ = write!(out, "edge {}:", r.child.index());
        for p in &r.points {
            let _ = write!(out, " ({:.2} {:.2})", p.x, p.y);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{embed, nearest_neighbor_topology, DeviceAssignment, Sink};
    use gcr_rctree::Technology;

    fn tree_with_snaking() -> (ClockTree, Technology) {
        let tech = Technology::default();
        // Sinks 0 and 1 are far apart: their merge carries a large delay.
        // Sink 2 sits right next to that merge region, so matching its
        // zero delay requires snaked wire.
        let sinks = vec![
            Sink::new(Point::new(0.0, 0.0), 0.30),
            Sink::new(Point::new(20_000.0, 0.0), 0.30),
            Sink::new(Point::new(10_000.0, 100.0), 0.02),
        ];
        let topo = crate::Topology::from_merges(3, &[(0, 1), (3, 2)]).unwrap();
        let tree = embed(
            &topo,
            &sinks,
            &tech,
            &DeviceAssignment::none(&topo),
            Point::new(10_000.0, 0.0),
        )
        .unwrap();
        (tree, tech)
    }

    #[test]
    fn every_route_matches_its_electrical_length() {
        let tech = Technology::default();
        let sinks = vec![
            Sink::new(Point::new(0.0, 0.0), 0.30),
            Sink::new(Point::new(900.0, 50.0), 0.02),
            Sink::new(Point::new(200.0, 800.0), 0.25),
            Sink::new(Point::new(950.0, 900.0), 0.01),
        ];
        let topo = nearest_neighbor_topology(&tech, &sinks, None).unwrap();
        let tree = embed(
            &topo,
            &sinks,
            &tech,
            &DeviceAssignment::none(&topo),
            Point::new(500.0, 500.0),
        )
        .unwrap();
        let routes = realize_routes(&tree);
        assert_eq!(routes.len(), tree.len() - 1); // every non-root edge
        for r in &routes {
            let target = tree.node(r.child).electrical_length();
            assert!(
                (r.length() - target).abs() < 1e-6,
                "edge {}: polyline {} vs electrical {target}",
                r.child.index(),
                r.length()
            );
            assert!(
                r.is_rectilinear(),
                "edge {} not rectilinear",
                r.child.index()
            );
            // Endpoints are the placed locations.
            let parent = tree.node(r.child).parent().unwrap();
            assert_eq!(r.points[0], tree.node(parent).location());
            assert_eq!(*r.points.last().unwrap(), tree.node(r.child).location());
        }
    }

    #[test]
    fn snaked_edges_get_detours() {
        let (tree, _) = tree_with_snaking();
        assert!(
            tree.snaked_wire_length() > 1.0,
            "fixture should actually snake ({} λ)",
            tree.snaked_wire_length()
        );
        let routes = realize_routes(&tree);
        let detoured = routes
            .iter()
            .filter(|r| {
                let parent = tree.node(r.child).parent().unwrap();
                let dist = tree
                    .node(parent)
                    .location()
                    .manhattan(tree.node(r.child).location());
                r.length() > dist + 1e-6
            })
            .count();
        assert!(detoured > 0, "no trombones realized");
    }

    #[test]
    fn straight_and_l_routes_are_minimal() {
        let straight = route_edge(Point::new(0.0, 0.0), Point::new(10.0, 0.0), 10.0);
        assert_eq!(straight.len(), 2);
        let l = route_edge(Point::new(0.0, 0.0), Point::new(10.0, 5.0), 15.0);
        assert_eq!(l.len(), 3);
        assert_eq!(l[1], Point::new(10.0, 0.0));
    }

    #[test]
    fn trombone_adds_exactly_the_excess() {
        let r = RoutedEdge {
            child: crate::TreeId(0),
            points: route_edge(Point::new(0.0, 0.0), Point::new(10.0, 5.0), 40.0),
        };
        assert!((r.length() - 40.0).abs() < 1e-9);
        assert!(r.is_rectilinear());
    }

    #[test]
    fn coincident_endpoints_with_snake() {
        let pts = route_edge(Point::new(3.0, 3.0), Point::new(3.0, 3.0), 8.0);
        let r = RoutedEdge {
            child: crate::TreeId(0),
            points: pts,
        };
        assert!((r.length() - 8.0).abs() < 1e-9);
        assert!(r.is_rectilinear());
    }

    #[test]
    fn format_is_parseable_lines() {
        let (tree, _) = tree_with_snaking();
        let routes = realize_routes(&tree);
        let text = format_routes(&routes);
        assert_eq!(text.lines().count(), routes.len());
        assert!(text.lines().all(|l| l.starts_with("edge ")));
    }
}
