use gcr_geometry::Point;
use gcr_rctree::{Device, Technology};

use crate::tree::build_clock_tree;
use crate::{zero_skew_merge, ClockTree, CtsError, Sink, SubtreeState, TopoNode, Topology};

/// Which device (masking gate, buffer, or nothing) sits on each edge of a
/// [`Topology`].
///
/// Indexed by topology node: the entry for node `v_i` is the device at the
/// **top of edge `e_i`** (the wire from `v_i`'s parent down to `v_i`) —
/// the paper's "gate on edge `e_i`", controlled by enable `EN_i`. The
/// entry for the root is the optional device between the clock source and
/// the tree.
///
/// The gated router starts from [`DeviceAssignment::everywhere`] (a gate
/// on every edge, §1) and the gate-reduction heuristic clears entries
/// before re-running [`embed`].
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceAssignment {
    devices: Vec<Option<Device>>,
}

impl DeviceAssignment {
    /// No devices anywhere (a plain wire tree).
    #[must_use]
    pub fn none(topology: &Topology) -> Self {
        Self {
            devices: vec![None; topology.len()],
        }
    }

    /// `device` on every edge (and between the source and the root) — the
    /// paper's fully gated tree (§1) or fully buffered baseline (§5.1).
    #[must_use]
    pub fn everywhere(topology: &Topology, device: Device) -> Self {
        Self {
            devices: vec![Some(device); topology.len()],
        }
    }

    /// The device on the edge feeding node `index`, if any.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<Device> {
        self.devices[index]
    }

    /// Sets or clears the device on the edge feeding node `index`.
    pub fn set(&mut self, index: usize, device: Option<Device>) {
        self.devices[index] = device;
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the assignment covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Number of edges that carry a device.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.devices.iter().filter(|d| d.is_some()).count()
    }

    /// Indices of nodes whose feeding edge carries a device.
    pub fn device_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.devices
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|_| i))
    }
}

/// Deferred-merge embedding of a fixed topology: the bottom-up pass
/// computes every node's merging region and zero-skew tap lengths under
/// the given per-edge device assignment; the top-down pass then places
/// each internal node at the point of its region closest to its parent
/// (the root goes to the point closest to `source`).
///
/// The result is a concrete [`ClockTree`] with per-edge *electrical*
/// lengths (≥ the placed Manhattan distance; the excess is wire snaking)
/// that is exactly zero-skew under the Elmore model.
///
/// # Errors
///
/// Returns [`CtsError::InvalidTopology`] when `sinks` does not match the
/// topology's leaf count, [`CtsError::AssignmentMismatch`] when the
/// assignment covers a different node count, and
/// [`CtsError::MergeRegionDisjoint`] when non-finite sink data makes a
/// zero-skew merge impossible.
pub fn embed(
    topology: &Topology,
    sinks: &[Sink],
    tech: &Technology,
    assignment: &DeviceAssignment,
    source: Point,
) -> Result<ClockTree, CtsError> {
    embed_impl(
        topology,
        sinks,
        tech,
        assignment,
        source,
        None,
        &gcr_trace::Tracer::disabled(),
    )
}

/// [`embed`] reporting the embedding phases (`embed.bottom_up`,
/// `embed.top_down`, nested in `embed.run`) through `tracer`.
///
/// # Errors
///
/// Same as [`embed`].
pub fn embed_traced(
    topology: &Topology,
    sinks: &[Sink],
    tech: &Technology,
    assignment: &DeviceAssignment,
    source: Point,
    tracer: &gcr_trace::Tracer,
) -> Result<ClockTree, CtsError> {
    embed_impl(topology, sinks, tech, assignment, source, None, tracer)
}

/// As [`embed`], but allows the embedder to **resize edge devices** within
/// `limits` to balance delays before resorting to wire snaking — the
/// paper's "gates … can be sized to adjust the phase delay of the clock
/// signal" (§1).
///
/// This matters most after gate reduction: with gates on some edges and
/// not others, sibling delays differ by whole gate stages, and matching
/// them with wire alone can multiply the tree's wirelength. The returned
/// tree's [`TreeNode::device`](crate::TreeNode::device) values reflect the
/// final sizes.
///
/// # Errors
///
/// Same as [`embed`].
pub fn embed_sized(
    topology: &Topology,
    sinks: &[Sink],
    tech: &Technology,
    assignment: &DeviceAssignment,
    source: Point,
    limits: crate::SizingLimits,
) -> Result<ClockTree, CtsError> {
    embed_impl(
        topology,
        sinks,
        tech,
        assignment,
        source,
        Some(limits),
        &gcr_trace::Tracer::disabled(),
    )
}

/// [`embed_sized`] reporting the embedding phases through `tracer` (same
/// spans as [`embed_traced`]).
///
/// # Errors
///
/// Same as [`embed`].
pub fn embed_sized_traced(
    topology: &Topology,
    sinks: &[Sink],
    tech: &Technology,
    assignment: &DeviceAssignment,
    source: Point,
    limits: crate::SizingLimits,
    tracer: &gcr_trace::Tracer,
) -> Result<ClockTree, CtsError> {
    embed_impl(
        topology,
        sinks,
        tech,
        assignment,
        source,
        Some(limits),
        tracer,
    )
}

#[allow(clippy::too_many_arguments)]
fn embed_impl(
    topology: &Topology,
    sinks: &[Sink],
    tech: &Technology,
    assignment: &DeviceAssignment,
    source: Point,
    sizing: Option<crate::SizingLimits>,
    tracer: &gcr_trace::Tracer,
) -> Result<ClockTree, CtsError> {
    let _run = tracer.span("embed.run");
    if sinks.len() != topology.num_leaves() {
        return Err(CtsError::InvalidTopology {
            reason: format!(
                "topology has {} leaves but {} sinks were supplied",
                topology.num_leaves(),
                sinks.len()
            ),
        });
    }
    if assignment.len() != topology.len() {
        return Err(CtsError::AssignmentMismatch {
            assigned: assignment.len(),
            expected: topology.len(),
        });
    }

    let n = topology.len();
    // Bottom-up order is plain index order (children precede parents), so
    // states can be pushed sequentially — no Option wrapper, no clones.
    let mut states: Vec<SubtreeState> = Vec::with_capacity(n);
    let mut tap_lengths: Vec<(f64, f64)> = vec![(0.0, 0.0); n];
    // Final device of each edge; sizing may scale entries away from the
    // nominal assignment.
    let mut devices: Vec<Option<gcr_rctree::Device>> = (0..n).map(|i| assignment.get(i)).collect();

    // Bottom-up: merging regions, tap lengths, electrical state.
    let bottom_up_span = tracer.span("embed.bottom_up");
    for (i, node) in topology.bottom_up() {
        debug_assert_eq!(i, states.len());
        let state = match node {
            TopoNode::Leaf { sink } => {
                SubtreeState::leaf_with_device(&sinks[sink], assignment.get(i))
            }
            TopoNode::Internal { left, right } => {
                let mut a = states[left];
                let mut b = states[right];
                if let Some(limits) = sizing {
                    if crate::balance_devices(tech, &mut a, &mut b, &limits) {
                        devices[left] = a.edge_device;
                        devices[right] = b.edge_device;
                    }
                }
                let outcome = zero_skew_merge(tech, &a, &b)?;
                tap_lengths[i] = (outcome.ea, outcome.eb);
                outcome.gated_state(assignment.get(i))
            }
        };
        states.push(state);
    }
    drop(bottom_up_span);

    // Top-down: concrete locations.
    let top_down_span = tracer.span("embed.top_down");
    let mut locations: Vec<Point> = vec![Point::ORIGIN; n];
    let root = topology.root();
    locations[root] = states[root].ms.closest_point(source);
    // Children have smaller indices than parents, so a reverse index scan
    // visits parents first.
    for i in (0..n).rev() {
        if let TopoNode::Internal { left, right } = topology.node(i) {
            let p = locations[i];
            locations[left] = states[left].ms.closest_point(p);
            locations[right] = states[right].ms.closest_point(p);
        }
    }
    drop(top_down_span);
    tracer.counter("embed.nodes", n as f64);

    Ok(build_clock_tree(
        topology,
        sinks,
        &devices,
        &locations,
        &tap_lengths,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_geometry::Point;

    fn four_sinks() -> Vec<Sink> {
        vec![
            Sink::new(Point::new(0.0, 0.0), 0.05),
            Sink::new(Point::new(1000.0, 0.0), 0.05),
            Sink::new(Point::new(0.0, 1000.0), 0.05),
            Sink::new(Point::new(1000.0, 1000.0), 0.05),
        ]
    }

    fn balanced_topology() -> Topology {
        Topology::from_merges(4, &[(0, 1), (2, 3), (4, 5)]).unwrap()
    }

    #[test]
    fn plain_tree_is_zero_skew() {
        let tech = Technology::default();
        let topo = balanced_topology();
        let sinks = four_sinks();
        let tree = embed(
            &topo,
            &sinks,
            &tech,
            &DeviceAssignment::none(&topo),
            Point::new(500.0, 500.0),
        )
        .unwrap();
        assert!(tree.verify_skew(&tech) < 1e-9);
        assert_eq!(tree.num_sinks(), 4);
    }

    #[test]
    fn fully_gated_tree_is_zero_skew() {
        let tech = Technology::default();
        let topo = balanced_topology();
        let sinks = four_sinks();
        let gated = embed(
            &topo,
            &sinks,
            &tech,
            &DeviceAssignment::everywhere(&topo, tech.and_gate()),
            Point::new(500.0, 500.0),
        )
        .unwrap();
        assert!(gated.verify_skew(&tech) < 1e-9);
        // One gate per edge plus the source gate.
        assert_eq!(gated.device_count(), 7);
    }

    #[test]
    fn partially_gated_tree_is_zero_skew() {
        let tech = Technology::default();
        let topo = balanced_topology();
        let sinks = four_sinks();
        let mut a = DeviceAssignment::everywhere(&topo, tech.and_gate());
        a.set(0, None);
        a.set(4, None);
        a.set(6, None);
        let tree = embed(&topo, &sinks, &tech, &a, Point::new(500.0, 500.0)).unwrap();
        assert!(tree.verify_skew(&tech) < 1e-9);
        assert_eq!(tree.device_count(), 4);
    }

    #[test]
    fn sink_locations_are_respected() {
        let tech = Technology::default();
        let topo = balanced_topology();
        let sinks = four_sinks();
        let tree = embed(
            &topo,
            &sinks,
            &tech,
            &DeviceAssignment::none(&topo),
            Point::new(0.0, 0.0),
        )
        .unwrap();
        for (i, s) in sinks.iter().enumerate() {
            assert_eq!(tree.node(tree.sink_id(i)).location(), s.location());
        }
    }

    #[test]
    fn edges_cover_placed_distance() {
        let tech = Technology::default();
        let topo = balanced_topology();
        let sinks = four_sinks();
        let tree = embed(
            &topo,
            &sinks,
            &tech,
            &DeviceAssignment::none(&topo),
            Point::new(500.0, 500.0),
        )
        .unwrap();
        // Electrical length of each edge must be >= the Manhattan distance
        // between the placed endpoints (the excess is snaking).
        for id in tree.ids() {
            let node = tree.node(id);
            if let Some(p) = node.parent() {
                let dist = node.location().manhattan(tree.node(p).location());
                assert!(
                    node.electrical_length() >= dist - 1e-6,
                    "edge to {id:?}: electrical {} < placed {dist}",
                    node.electrical_length()
                );
            }
        }
    }

    #[test]
    fn single_sink_tree() {
        let tech = Technology::default();
        let topo = Topology::single_sink().unwrap();
        let sinks = vec![Sink::new(Point::new(7.0, 8.0), 0.02)];
        let tree = embed(
            &topo,
            &sinks,
            &tech,
            &DeviceAssignment::none(&topo),
            Point::ORIGIN,
        )
        .unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.node(tree.root()).location(), Point::new(7.0, 8.0));
    }

    #[test]
    fn mismatched_sinks_rejected() {
        let tech = Technology::default();
        let topo = balanced_topology();
        let sinks = vec![Sink::new(Point::ORIGIN, 0.05)];
        let err = embed(
            &topo,
            &sinks,
            &tech,
            &DeviceAssignment::none(&topo),
            Point::ORIGIN,
        )
        .unwrap_err();
        assert!(matches!(err, CtsError::InvalidTopology { .. }));
    }

    #[test]
    fn mismatched_assignment_rejected() {
        let tech = Technology::default();
        let topo = balanced_topology();
        let other = Topology::single_sink().unwrap();
        let err = embed(
            &topo,
            &four_sinks(),
            &tech,
            &DeviceAssignment::none(&other),
            Point::ORIGIN,
        )
        .unwrap_err();
        assert!(matches!(err, CtsError::AssignmentMismatch { .. }));
    }

    #[test]
    fn assignment_helpers() {
        let topo = balanced_topology();
        let mut a = DeviceAssignment::everywhere(&topo, Technology::default().and_gate());
        assert_eq!(a.device_count(), 7);
        assert_eq!(
            a.device_nodes().collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5, 6]
        );
        a.set(4, None);
        assert_eq!(a.device_count(), 6);
        assert!(!a.is_empty());
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn gating_reduces_upstream_load_and_delay_variance() {
        // With heavy far-apart sinks, gating every edge shortens the
        // source-to-sink delay because the source drives only gate caps.
        let tech = Technology::default();
        let sinks: Vec<Sink> = (0..8)
            .map(|i| {
                Sink::new(
                    Point::new(f64::from(i % 4) * 30_000.0, f64::from(i / 4) * 30_000.0),
                    0.3,
                )
            })
            .collect();
        let topo = Topology::from_merges(
            8,
            &[(0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (10, 11), (12, 13)],
        )
        .unwrap();
        let src = Point::new(45_000.0, 15_000.0);
        let gated = embed(
            &topo,
            &sinks,
            &tech,
            &DeviceAssignment::everywhere(&topo, tech.and_gate()),
            src,
        )
        .unwrap();
        let plain = embed(&topo, &sinks, &tech, &DeviceAssignment::none(&topo), src).unwrap();
        assert!(gated.verify_skew(&tech) < 1e-6);
        assert!(plain.verify_skew(&tech) < 1e-6);
        assert!(
            gated.source_to_sink_delay(&tech) < plain.source_to_sink_delay(&tech),
            "gated {} >= plain {}",
            gated.source_to_sink_delay(&tech),
            plain.source_to_sink_delay(&tech)
        );
    }
}
