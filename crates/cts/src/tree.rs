use std::fmt;

use gcr_geometry::Point;
use gcr_rctree::{Device, NodeId, RcTree, Technology};

use crate::{Sink, TopoNode, Topology};

/// Identifier of a node in a [`ClockTree`]. Identical to the node's index
/// in the [`Topology`](crate::Topology) the tree was embedded from:
/// sinks are `0..N`, internal nodes `N..2N-1`, the root is last.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TreeId(pub(crate) usize);

impl TreeId {
    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TreeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Inline child storage of a binary clock-tree node: at most two ids and
/// a length, so a [`TreeNode`] is one flat `Copy` value with no per-node
/// heap vector behind it.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Children {
    ids: [TreeId; 2],
    len: u8,
}

impl Children {
    const NONE: Self = Self {
        ids: [TreeId(0), TreeId(0)],
        len: 0,
    };

    fn pair(left: TreeId, right: TreeId) -> Self {
        Self {
            ids: [left, right],
            len: 2,
        }
    }

    /// # Panics
    ///
    /// Panics when `children` holds more than two entries — clock-tree
    /// nodes are at most binary.
    fn from_slice(children: &[usize]) -> Self {
        assert!(
            children.len() <= 2,
            "clock-tree nodes are at most binary, got {} children",
            children.len()
        );
        let mut out = Self::NONE;
        for (slot, &c) in out.ids.iter_mut().zip(children) {
            *slot = TreeId(c);
        }
        out.len = children.len() as u8;
        out
    }

    fn as_slice(&self) -> &[TreeId] {
        &self.ids[..self.len as usize]
    }
}

/// One embedded clock-tree node: a placed location, the wire to its
/// parent, and the optional masking gate or buffer at the top of that
/// wire.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeNode {
    parent: Option<TreeId>,
    children: Children,
    location: Point,
    electrical_length: f64,
    device: Option<Device>,
    sink: Option<usize>,
}

impl TreeNode {
    /// The parent node, or `None` for the root.
    #[must_use]
    pub fn parent(&self) -> Option<TreeId> {
        self.parent
    }

    /// The children (empty for sinks, two for internal nodes).
    #[must_use]
    pub fn children(&self) -> &[TreeId] {
        self.children.as_slice()
    }

    /// The placed layout location.
    #[must_use]
    pub fn location(&self) -> Point {
        self.location
    }

    /// Electrical wire length of the edge to the parent (layout units).
    /// At least the Manhattan distance between the endpoints; the excess
    /// is snaked wire. Zero for the root.
    #[must_use]
    pub fn electrical_length(&self) -> f64 {
        self.electrical_length
    }

    /// The masking gate or buffer at the **top of this node's parent
    /// edge** (for the root: between the clock source and the tree), if
    /// any. This is the paper's "gate on edge `e_i`" controlled by `EN_i`.
    #[must_use]
    pub fn device(&self) -> Option<Device> {
        self.device
    }

    /// The sink index this leaf is bound to, or `None` for internal nodes.
    #[must_use]
    pub fn sink(&self) -> Option<usize> {
        self.sink
    }

    /// Whether the node is a leaf (sink).
    #[must_use]
    pub fn is_sink(&self) -> bool {
        self.sink.is_some()
    }
}

/// A fully embedded clock tree: topology + placement + wire lengths +
/// per-edge devices. Produced by [`embed`](crate::embed).
///
/// The tree knows nothing about gating probabilities — it is pure
/// geometry and electricity. Switched-capacitance evaluation (weighting
/// each edge by its enable probability) lives in `gcr-core`.
#[derive(Clone, Debug, PartialEq)]
pub struct ClockTree {
    nodes: Vec<TreeNode>,
    sink_caps: Vec<f64>,
}

pub(crate) fn build_clock_tree(
    topology: &Topology,
    sinks: &[Sink],
    devices: &[Option<Device>],
    locations: &[Point],
    tap_lengths: &[(f64, f64)],
) -> ClockTree {
    let parents = topology.parents();
    let n = topology.len();
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let (children, sink) = match topology.node(i) {
            TopoNode::Leaf { sink } => (Children::NONE, Some(sink)),
            TopoNode::Internal { left, right } => {
                (Children::pair(TreeId(left), TreeId(right)), None)
            }
        };
        // The edge length to the parent is recorded on the parent's tap
        // lengths: (ea, eb) for (left, right).
        let electrical_length = match parents[i] {
            Some(p) => {
                let (ea, eb) = tap_lengths[p];
                match topology.node(p) {
                    TopoNode::Internal { left, .. } if left == i => ea,
                    _ => eb,
                }
            }
            None => 0.0,
        };
        nodes.push(TreeNode {
            parent: parents[i].map(TreeId),
            children,
            location: locations[i],
            electrical_length,
            device: devices[i],
            sink,
        });
    }
    ClockTree {
        nodes,
        sink_caps: sinks.iter().map(Sink::cap).collect(),
    }
}

/// A [`TreeNode`] with its fields exposed: the exchange format of
/// [`ClockTree::to_raw_parts`] / [`ClockTree::from_raw_parts`]. Indices are
/// plain `usize` node positions.
#[derive(Clone, Debug, PartialEq)]
pub struct RawTreeNode {
    /// Parent node index, `None` for the root.
    pub parent: Option<usize>,
    /// Child node indices (empty for sinks, two for internal nodes).
    pub children: Vec<usize>,
    /// Placed layout location.
    pub location: Point,
    /// Electrical length of the edge to the parent.
    pub electrical_length: f64,
    /// Device at the top of the parent edge.
    pub device: Option<Device>,
    /// Bound sink index, `None` for internal nodes.
    pub sink: Option<usize>,
}

impl ClockTree {
    /// Total number of nodes (`2·N − 1`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Decomposes the tree into raw nodes and sink capacitances — the
    /// inverse of [`ClockTree::from_raw_parts`].
    #[must_use]
    pub fn to_raw_parts(&self) -> (Vec<RawTreeNode>, Vec<f64>) {
        let nodes = self
            .nodes
            .iter()
            .map(|n| RawTreeNode {
                parent: n.parent.map(TreeId::index),
                children: n
                    .children
                    .as_slice()
                    .iter()
                    .copied()
                    .map(TreeId::index)
                    .collect(),
                location: n.location,
                electrical_length: n.electrical_length,
                device: n.device,
                sink: n.sink,
            })
            .collect();
        (nodes, self.sink_caps.clone())
    }

    /// Reassembles a tree from raw nodes and sink capacitances.
    ///
    /// **No structural validation is performed** — out-of-range indices
    /// aside, any shape is accepted, including shapes that violate the
    /// embedding invariants (multiple roots, cycles, negative snaking,
    /// skewed delays). This is deliberate: external importers and tests
    /// construct candidate trees here and run `gcr-verify` over them to
    /// find out what is wrong.
    ///
    /// # Panics
    ///
    /// Panics if a parent, child or sink index is out of range, or if a
    /// node lists more than two children (clock-tree nodes are at most
    /// binary).
    #[must_use]
    pub fn from_raw_parts(nodes: Vec<RawTreeNode>, sink_caps: Vec<f64>) -> Self {
        let n = nodes.len();
        let nodes = nodes
            .into_iter()
            .map(|r| {
                assert!(r.parent.is_none_or(|p| p < n), "parent index out of range");
                assert!(
                    r.children.iter().all(|&c| c < n),
                    "child index out of range"
                );
                assert!(
                    r.sink.is_none_or(|s| s < sink_caps.len()),
                    "sink index out of range"
                );
                TreeNode {
                    parent: r.parent.map(TreeId),
                    children: Children::from_slice(&r.children),
                    location: r.location,
                    electrical_length: r.electrical_length,
                    device: r.device,
                    sink: r.sink,
                }
            })
            .collect();
        ClockTree { nodes, sink_caps }
    }

    /// Whether the tree has no nodes (never true for an embedded tree).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of sinks.
    #[must_use]
    pub fn num_sinks(&self) -> usize {
        self.sink_caps.len()
    }

    /// The root id (always the last node).
    #[must_use]
    pub fn root(&self) -> TreeId {
        TreeId(self.nodes.len() - 1)
    }

    /// The id of sink `i` (leaf ids coincide with sink indices).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_sinks()`.
    #[must_use]
    pub fn sink_id(&self, i: usize) -> TreeId {
        assert!(i < self.sink_caps.len(), "sink {i} out of range");
        TreeId(i)
    }

    /// The load capacitance (pF) of sink `i`.
    #[must_use]
    pub fn sink_cap(&self, i: usize) -> f64 {
        self.sink_caps[i]
    }

    /// The node with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node(&self, id: TreeId) -> &TreeNode {
        &self.nodes[id.0]
    }

    /// The id for a raw node index (the topology index the tree was
    /// embedded from).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    pub fn id(&self, index: usize) -> TreeId {
        assert!(index < self.nodes.len(), "node index {index} out of range");
        TreeId(index)
    }

    /// Iterator over all node ids in bottom-up (children before parents)
    /// order.
    pub fn ids(&self) -> impl Iterator<Item = TreeId> {
        (0..self.nodes.len()).map(TreeId)
    }

    /// Total electrical wire length (layout units), snaking included.
    #[must_use]
    pub fn total_wire_length(&self) -> f64 {
        self.nodes.iter().map(TreeNode::electrical_length).sum()
    }

    /// Total Manhattan distance between placed edge endpoints.
    #[must_use]
    pub fn placed_wire_length(&self) -> f64 {
        self.nodes
            .iter()
            .filter_map(|n| {
                n.parent
                    .map(|p| n.location.manhattan(self.nodes[p.0].location))
            })
            .sum()
    }

    /// Wire added purely to balance delays (electrical − placed).
    #[must_use]
    pub fn snaked_wire_length(&self) -> f64 {
        self.total_wire_length() - self.placed_wire_length()
    }

    /// Number of edges carrying a device.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.device.is_some()).count()
    }

    /// Iterator over `(id, device)` for every gated/buffered edge. The
    /// gate physically sits at the top of the edge — i.e. at the parent's
    /// location (see [`ClockTree::gate_location`]).
    pub fn devices(&self) -> impl Iterator<Item = (TreeId, Device)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.device.map(|d| (TreeId(i), d)))
    }

    /// The physical location of the device on the edge feeding `id`: the
    /// parent's placed location (the root's device sits at the root).
    /// This is where the controller's enable wire terminates.
    #[must_use]
    pub fn gate_location(&self, id: TreeId) -> Point {
        match self.nodes[id.0].parent {
            Some(p) => self.nodes[p.0].location,
            None => self.nodes[id.0].location,
        }
    }

    /// Converts the tree into an [`RcTree`] for independent Elmore
    /// analysis; returns the RC tree and the RC node id of each sink (in
    /// sink order). Edge devices become zero-length buffered stubs at the
    /// parent end of their edge.
    #[must_use]
    #[expect(
        clippy::expect_used,
        reason = "parent-before-child traversal fills every RC id before it is read, \
                  and every sink node is visited"
    )]
    pub fn to_rc_tree(&self, tech: &Technology) -> (RcTree, Vec<NodeId>) {
        let mut rc = RcTree::new(tech.source());
        let mut rc_ids: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let root = self.root();
        let root_attach = match self.nodes[root.0].device {
            Some(d) => {
                let g = rc.add_node(rc.root(), 0.0, 0.0);
                rc.set_device(g, d);
                g
            }
            None => rc.root(),
        };
        if let Some(s) = self.nodes[root.0].sink {
            rc.set_load(root_attach, self.sink_caps[s]);
        }
        rc_ids[root.0] = Some(root_attach);
        // Parent-before-child traversal: indices descend from the root.
        for i in (0..self.nodes.len()).rev() {
            let node = &self.nodes[i];
            let Some(p) = node.parent else { continue };
            let parent_rc = rc_ids[p.0].expect("parent visited first");
            let attach = match node.device {
                Some(d) => {
                    // Zero-length stub: the gate input sits directly at the
                    // parent's output.
                    let g = rc.add_node(parent_rc, 0.0, 0.0);
                    rc.set_device(g, d);
                    g
                }
                None => parent_rc,
            };
            let len = node.electrical_length;
            let id = rc.add_node(attach, tech.wire_res(len), tech.wire_cap(len));
            if let Some(s) = node.sink {
                rc.set_load(id, self.sink_caps[s]);
            }
            rc_ids[i] = Some(id);
        }
        let sinks = (0..self.sink_caps.len())
            .map(|i| rc_ids[i].expect("every sink is reachable"))
            .collect();
        (rc, sinks)
    }

    /// The Elmore skew (ps) across all sinks, measured on a from-scratch
    /// RC analysis — the independent zero-skew check.
    #[must_use]
    pub fn verify_skew(&self, tech: &Technology) -> f64 {
        let (rc, sinks) = self.to_rc_tree(tech);
        rc.analyze().skew(&sinks)
    }

    /// The Elmore delay (ps) from the clock source to the sinks (all equal
    /// under zero skew; the maximum is reported).
    #[must_use]
    pub fn source_to_sink_delay(&self, tech: &Technology) -> f64 {
        let (rc, sinks) = self.to_rc_tree(tech);
        rc.analyze().max_arrival(&sinks)
    }
}

impl fmt::Display for ClockTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ClockTree[{} sinks, {:.0} wire units, {} devices]",
            self.num_sinks(),
            self.total_wire_length(),
            self.device_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{embed, DeviceAssignment};

    fn small_tree(devices: bool) -> (ClockTree, Technology) {
        let tech = Technology::default();
        let sinks = vec![
            Sink::new(Point::new(0.0, 0.0), 0.05),
            Sink::new(Point::new(600.0, 0.0), 0.07),
            Sink::new(Point::new(300.0, 800.0), 0.03),
        ];
        let topo = Topology::from_merges(3, &[(0, 1), (3, 2)]).unwrap();
        let assignment = if devices {
            DeviceAssignment::everywhere(&topo, tech.and_gate())
        } else {
            DeviceAssignment::none(&topo)
        };
        let tree = embed(&topo, &sinks, &tech, &assignment, Point::new(300.0, 300.0)).unwrap();
        (tree, tech)
    }

    #[test]
    fn structure_accessors() {
        let (tree, _) = small_tree(false);
        assert_eq!(tree.len(), 5);
        assert_eq!(tree.num_sinks(), 3);
        assert_eq!(tree.root(), TreeId(4));
        assert!(tree.node(tree.sink_id(0)).is_sink());
        assert!(!tree.node(tree.root()).is_sink());
        assert_eq!(tree.node(tree.root()).children().len(), 2);
        assert_eq!(tree.sink_cap(1), 0.07);
        assert!(!tree.is_empty());
    }

    #[test]
    fn wire_lengths_are_consistent() {
        let (tree, _) = small_tree(false);
        assert!(tree.total_wire_length() > 0.0);
        assert!(tree.placed_wire_length() <= tree.total_wire_length() + 1e-9);
        assert!(tree.snaked_wire_length() >= -1e-9);
    }

    #[test]
    fn device_enumeration_and_gate_locations() {
        let (plain, _) = small_tree(false);
        assert_eq!(plain.device_count(), 0);
        let (gated, _) = small_tree(true);
        assert_eq!(gated.device_count(), 5);
        for (id, _) in gated.devices() {
            let loc = gated.gate_location(id);
            match gated.node(id).parent() {
                Some(p) => assert_eq!(loc, gated.node(p).location()),
                None => assert_eq!(loc, gated.node(id).location()),
            }
        }
    }

    #[test]
    fn rc_conversion_is_zero_skew_both_ways() {
        for devices in [false, true] {
            let (tree, tech) = small_tree(devices);
            let skew = tree.verify_skew(&tech);
            assert!(skew < 1e-9, "devices={devices}: skew {skew}");
            assert!(tree.source_to_sink_delay(&tech) > 0.0);
        }
    }

    #[test]
    fn rc_conversion_preserves_total_wire_cap() {
        for devices in [false, true] {
            let (tree, tech) = small_tree(devices);
            let (rc, _) = tree.to_rc_tree(&tech);
            let expect = tech.wire_cap(tree.total_wire_length());
            assert!(
                (rc.total_wire_cap() - expect).abs() < 1e-12,
                "devices={devices}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sink_id_bounds() {
        let (tree, _) = small_tree(false);
        let _ = tree.sink_id(3);
    }

    #[test]
    fn display_is_nonempty() {
        let (tree, _) = small_tree(true);
        assert!(format!("{tree}").contains("3 sinks"));
    }
}
