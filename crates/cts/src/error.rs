use std::error::Error;
use std::fmt;

/// Errors produced by clock-tree synthesis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtsError {
    /// Synthesis was asked to route an empty sink set.
    NoSinks,
    /// A topology description was structurally invalid.
    InvalidTopology {
        /// Human-readable reason.
        reason: String,
    },
    /// A device assignment did not match the topology it was applied to.
    AssignmentMismatch {
        /// Nodes in the assignment.
        assigned: usize,
        /// Nodes in the topology.
        expected: usize,
    },
    /// A zero-skew merge could not intersect the children's merging
    /// regions, even after snaking — the subtree states carry non-finite
    /// delays, capacitances, or coordinates.
    MergeRegionDisjoint {
        /// Human-readable description of the failing merge.
        detail: String,
    },
}

impl fmt::Display for CtsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtsError::NoSinks => write!(f, "clock routing needs at least one sink"),
            CtsError::InvalidTopology { reason } => write!(f, "invalid topology: {reason}"),
            CtsError::AssignmentMismatch { assigned, expected } => write!(
                f,
                "device assignment covers {assigned} nodes but topology has {expected}"
            ),
            CtsError::MergeRegionDisjoint { detail } => {
                write!(f, "zero-skew merge regions are disjoint: {detail}")
            }
        }
    }
}

impl Error for CtsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CtsError::NoSinks.to_string().contains("sink"));
        let e = CtsError::AssignmentMismatch {
            assigned: 3,
            expected: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
    }

    #[test]
    fn merge_region_disjoint_displays_detail() {
        let e = CtsError::MergeRegionDisjoint {
            detail: "d=NaN".to_string(),
        };
        assert!(e.to_string().contains("disjoint"));
        assert!(e.to_string().contains("d=NaN"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<CtsError>();
    }
}
