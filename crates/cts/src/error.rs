use std::error::Error;
use std::fmt;

/// Errors produced by clock-tree synthesis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtsError {
    /// Synthesis was asked to route an empty sink set.
    NoSinks,
    /// A topology description was structurally invalid.
    InvalidTopology {
        /// Human-readable reason.
        reason: String,
    },
    /// A device assignment did not match the topology it was applied to.
    AssignmentMismatch {
        /// Nodes in the assignment.
        assigned: usize,
        /// Nodes in the topology.
        expected: usize,
    },
    /// A zero-skew merge could not intersect the children's merging
    /// regions, even after snaking — the subtree states carry non-finite
    /// delays, capacitances, or coordinates.
    MergeRegionDisjoint {
        /// Human-readable description of the failing merge.
        detail: String,
    },
    /// An engineering-change-order edit batch was inconsistent with the
    /// routing it targets: an out-of-range sink index, two geometric
    /// edits addressing the same sink, or a batch that removes every
    /// sink.
    InvalidEco {
        /// Human-readable reason.
        reason: String,
    },
    /// A design is too large for the engine's u32/packed node indexing:
    /// the full node count `2·n − 1` would overflow the 31-bit index
    /// budget of the packed heap entries (and the u32 arena/tree
    /// columns). Raised up front, before any storage is sized, instead
    /// of silently truncating indices.
    CapacityExceeded {
        /// Total nodes (`2·n − 1`) the design would need.
        nodes: usize,
        /// Largest node count the index representation supports.
        limit: usize,
    },
}

impl fmt::Display for CtsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtsError::NoSinks => write!(f, "clock routing needs at least one sink"),
            CtsError::InvalidTopology { reason } => write!(f, "invalid topology: {reason}"),
            CtsError::AssignmentMismatch { assigned, expected } => write!(
                f,
                "device assignment covers {assigned} nodes but topology has {expected}"
            ),
            CtsError::MergeRegionDisjoint { detail } => {
                write!(f, "zero-skew merge regions are disjoint: {detail}")
            }
            CtsError::InvalidEco { reason } => write!(f, "invalid ECO edit batch: {reason}"),
            CtsError::CapacityExceeded { nodes, limit } => write!(
                f,
                "design needs {nodes} tree nodes but the node index representation \
                 supports at most {limit}"
            ),
        }
    }
}

impl Error for CtsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CtsError::NoSinks.to_string().contains("sink"));
        let e = CtsError::AssignmentMismatch {
            assigned: 3,
            expected: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
    }

    #[test]
    fn merge_region_disjoint_displays_detail() {
        let e = CtsError::MergeRegionDisjoint {
            detail: "d=NaN".to_string(),
        };
        assert!(e.to_string().contains("disjoint"));
        assert!(e.to_string().contains("d=NaN"));
    }

    #[test]
    fn invalid_eco_displays_reason() {
        let e = CtsError::InvalidEco {
            reason: "sink 9 edited twice".to_string(),
        };
        assert!(e.to_string().contains("ECO"));
        assert!(e.to_string().contains("sink 9 edited twice"));
    }

    #[test]
    fn capacity_exceeded_displays_both_numbers() {
        let e = CtsError::CapacityExceeded {
            nodes: 4_294_967_297,
            limit: 2_147_483_647,
        };
        assert!(e.to_string().contains("4294967297"));
        assert!(e.to_string().contains("2147483647"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<CtsError>();
    }
}
