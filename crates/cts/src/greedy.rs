use std::sync::OnceLock;
use std::time::Instant;

use gcr_geometry::Point;
use gcr_trace::Tracer;

use crate::arena::NODE_INDEX_LIMIT;
use crate::nearest::BucketGrid;
use crate::{CtsError, Topology};

/// The pluggable cost model of the bottom-up greedy merger.
///
/// The engine owns the *control flow* of the paper's `GatedClockRouting`
/// loop ("pick the pair whose SC is minimum … until only the root is
/// left"); the objective owns the *state*: subtree electrical summaries,
/// activity statistics, whatever the cost needs. Implementations:
///
/// * [`NearestNeighborObjective`](crate::NearestNeighborObjective) — cost =
///   geometric distance between merging regions (Edahiro \[3\], the paper's
///   buffered baseline);
/// * the Equation-3 switched-capacitance objective in `gcr-core` (the
///   paper's contribution).
///
/// `cost` and the bound methods take `&self` (and the trait requires
/// [`Sync`]) so the engine can evaluate candidate batches on multiple
/// threads; all mutation happens in `merge`.
///
/// # Exactness contract
///
/// The pruned engine ([`run_greedy`]) commits exactly the merges the
/// exhaustive engine ([`run_greedy_exhaustive`]) would, *provided* the
/// bound methods are **admissible**:
///
/// * `cost_lower_bound(a, b) <= cost(a, b)` for every live pair, and
/// * `cost_lower_bound_at_distance(x, dist) <= cost(x, y)` for every sink
///   leaf `y` whose location is at Manhattan distance `>= dist` from
///   `location(x)`.
///
/// An inadmissible bound does not corrupt the tree — every committed merge
/// still uses the exact `cost` — but the merge *order* can then diverge
/// from the exhaustive engine. [`run_greedy_checked`] asserts the
/// equivalence at runtime.
pub trait MergeObjective: Sync {
    /// Cost of merging the live subtrees rooted at topology nodes `a` and
    /// `b`. Must depend only on the states of `a` and `b` (both immutable
    /// once created) so that heap entries never go stale.
    fn cost(&self, a: usize, b: usize) -> f64;

    /// Cheap admissible lower bound on [`cost`](Self::cost) for the pair
    /// `(a, b)`: must never exceed the exact cost, and must be computable
    /// without a zero-skew merge (for Equation 3 this is the
    /// distance-driven wire-capacitance term plus the merge-independent
    /// static terms).
    fn cost_lower_bound(&self, a: usize, b: usize) -> f64;

    /// Batched [`cost_lower_bound`](Self::cost_lower_bound): writes the
    /// bound of `(center, candidates[i])` into `out[i]` for every
    /// candidate. The engine prices whole candidate sets (seed rings,
    /// expansion rings, post-merge floods) through this method, so
    /// implementations should stream their per-node columns in
    /// [`BOUND_LANES`](crate::BOUND_LANES)-wide branch-free chunks that
    /// LLVM can unroll or vectorize.
    ///
    /// **Contract:** each `out[i]` must be bit-identical to
    /// `cost_lower_bound(center, candidates[i] as usize)` — the engine
    /// mixes batched and per-pair bounds for the same node, and a single
    /// differing bit in a heap key could reorder pops. The default
    /// implementation simply delegates per pair.
    ///
    /// # Panics
    ///
    /// Implementations may assume (and the default asserts) that
    /// `candidates` and `out` have equal lengths.
    fn bound_batch(&self, center: usize, candidates: &[u32], out: &mut [f64]) {
        assert_eq!(candidates.len(), out.len());
        for (o, &y) in out.iter_mut().zip(candidates) {
            *o = self.cost_lower_bound(center, y as usize);
        }
    }

    /// Admissible lower bound on `cost(node, y)` over every **sink leaf**
    /// `y` located at Manhattan distance at least `dist` from
    /// `location(node)`. Used to price the not-yet-generated bucket-grid
    /// rings of a leaf, so `node` is always a leaf when the engine calls
    /// this.
    fn cost_lower_bound_at_distance(&self, node: usize, dist: f64) -> f64;

    /// Representative location of `node` (the center of its merging
    /// region; for a leaf, the sink location). Leaf locations seed the
    /// candidate-generation bucket grid.
    fn location(&self, node: usize) -> Point;

    /// Commit the merge of `a` and `b` into the new topology node `k`
    /// (`k` is always the next unused index). The objective must create
    /// and cache whatever state node `k` needs for future cost queries.
    ///
    /// # Errors
    ///
    /// Implementations that run a zero-skew merge propagate its
    /// [`CtsError::MergeRegionDisjoint`] instead of panicking.
    fn merge(&mut self, a: usize, b: usize, k: usize) -> Result<(), CtsError>;
}

/// Instrumentation counters of one greedy run, exposed so benchmarks (and
/// the acceptance gate on pruning effectiveness) can compare engines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GreedyStats {
    /// Exact [`MergeObjective::cost`] evaluations (each runs a full
    /// zero-skew merge under the Equation-3 objective) — the number the
    /// pruned engine exists to minimize.
    pub exact_cost_evals: u64,
    /// Cheap [`MergeObjective::cost_lower_bound`] evaluations.
    pub bound_evals: u64,
    /// Bucket-grid expansion rings generated (0 for the exhaustive
    /// engine).
    pub ring_expansions: u64,
    /// Heap entries popped, including lazily-deleted dead ones.
    pub heap_pops: u64,
    /// [`MergeObjective::bound_batch`] invocations (seed sweeps, ring
    /// expansions, and post-merge floods each count once).
    pub bound_batches: u64,
    /// Candidates whose bound lost to the center node's best known exact
    /// cost and were parked in the deferred-candidate slab instead of
    /// becoming heap entries.
    pub bounds_filtered: u64,
}

/// Tuning knobs of a greedy run. All fields default to "decide at
/// runtime", so `GreedyParams::default()` reproduces the historical
/// behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GreedyParams {
    /// Worker threads for large candidate batches. Resolution order:
    /// this field, then the `GCR_THREADS` environment variable, then
    /// `std::thread::available_parallelism()`; the result is clamped to
    /// `1..=16`. Pin it (or set `GCR_THREADS=1`) for reproducible timings
    /// on shared CI runners — the committed merges are identical at any
    /// thread count, only wall time varies.
    pub threads: Option<usize>,
    /// Record a [`MergeDecision`] per committed merge into the scratch's
    /// decision log (read back with [`GreedyScratch::decisions`]). Off by
    /// default: the log is one push per merge — cheap, but it may grow a
    /// cold scratch's buffer, so the zero-allocation warm-loop invariant
    /// is only guaranteed with logging off or a warmed log buffer.
    pub log_decisions: bool,
}

/// One committed merge of a greedy run: the canonical decision-log record
/// the determinism auditor diffs across thread counts and tracing
/// configurations.
///
/// The winning pair is stored in canonical `a < b` orientation and the
/// winning exact cost as raw `f64` bits, so two logs are equal **iff**
/// the runs took bit-identical decisions (same merge order, same chosen
/// partners, same tie-break keys).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MergeDecision {
    /// Lower-indexed merge partner.
    pub a: u32,
    /// Higher-indexed merge partner.
    pub b: u32,
    /// The node index the merge created (`num_leaves + step`).
    pub node: u32,
    /// The winning exact cost, as `f64::to_bits` for bit-exact diffing.
    pub key_bits: u64,
}

impl MergeDecision {
    /// The winning exact cost as a float.
    #[must_use]
    pub fn key(&self) -> f64 {
        f64::from_bits(self.key_bits)
    }
}

impl std::fmt::Display for MergeDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "merge v{} <- (v{}, v{}) key=0x{:016x}",
            self.node, self.a, self.b, self.key_bits
        )
    }
}

/// Renders a decision log in its canonical text form: one
/// `merge v<node> <- (v<a>, v<b>) key=0x<bits>` line per committed merge.
/// Two runs are bit-identical iff their canonical logs are equal strings.
#[must_use]
pub fn canonical_decision_log(decisions: &[MergeDecision]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for d in decisions {
        let _ = writeln!(out, "{d}");
    }
    out
}

/// Per-phase wall times and allocation counts of one greedy run.
///
/// Allocation counts are read from the probe installed with
/// [`set_alloc_probe`] (benchmarks install a counting global allocator);
/// without a probe they stay 0. The engine's steady-state invariant is
/// `loop_allocs == 0` on a **warm** run — one that reuses a
/// [`GreedyScratch`] and an objective whose buffers were pre-reserved —
/// since every loop-phase buffer then already has capacity.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GreedyProfile {
    /// Wall time (ms) of the seed phase: location gathering, bucket-grid
    /// construction, initial bound batch, heapify.
    pub seed_ms: f64,
    /// Wall time (ms) of the merge loop (topology assembly excluded).
    pub loop_ms: f64,
    /// Heap allocations performed during the seed phase.
    pub seed_allocs: u64,
    /// Heap allocations performed during the merge loop.
    pub loop_allocs: u64,
}

/// Global allocation-count probe used by [`GreedyProfile`].
///
/// The cts crate forbids `unsafe`, so it cannot host a counting
/// `#[global_allocator]` itself; binaries that have one (the bench
/// harness, the zero-alloc test) register a reader here.
static ALLOC_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Installs the allocation-count reader consulted by the greedy engines'
/// [`GreedyProfile`]. The probe must be monotone (a running total of
/// allocations in the process). First installation wins; later calls are
/// ignored.
pub fn set_alloc_probe(probe: fn() -> u64) {
    let _ = ALLOC_PROBE.set(probe);
}

/// Current allocation count, or 0 when no probe is installed.
pub(crate) fn alloc_count() -> u64 {
    ALLOC_PROBE.get().map_or(0, |probe| probe())
}

/// A duration as saturating `u64` nanoseconds (the trace event width).
fn elapsed_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Heap-entry kinds, in tie-break order. At equal keys, every non-exact
/// kind (expansion, deferred-slab, bound) must resolve **before** any
/// exact entry commits, so that every pair whose true cost ties the
/// minimum is present as an exact entry when the winner is chosen — this
/// is what makes the pruned engine's tie-breaking identical to the
/// exhaustive engine's.
const KIND_EXPAND: u8 = 0;
const KIND_DEFER: u8 = 1;
const KIND_BOUND: u8 = 2;
const KIND_EXACT: u8 = 3;

/// Indices must fit in 31 bits so `(kind, a, b)` packs into one `u64` tag.
const INDEX_BITS: u32 = 31;
const INDEX_MASK: u64 = (1 << INDEX_BITS) - 1;

/// A prioritized work item in the lazy best-first heap, packed to 16
/// bytes: the f64 key plus a `u64` tag holding `(kind << 62) | (a << 31)
/// | b`. Because `a` and `b` are below `2^31`, ascending tag order is
/// exactly ascending `(kind, a, b)` lexicographic order, so one integer
/// compare replaces the old three-field tie-break while preserving the
/// strict total order that makes the pop sequence — and therefore the
/// committed merges — implementation-independent.
///
/// * `KIND_EXPAND`: generate ring `b` of leaf `a`'s bucket-grid
///   neighborhood; `key` bounds the cost of every not-yet-generated pair
///   of `a`.
/// * `KIND_DEFER`: slab row `b` of filtered candidates of center node `a`
///   (`b` is a row index, **not** a node); `key` is the minimum bound of
///   the row's still-deferred candidates, so the row as a whole stays an
///   admissible stand-in for every pair it covers.
/// * `KIND_BOUND`: pair `(a, b)` with `key = cost_lower_bound(a, b)`.
/// * `KIND_EXACT`: pair `(a, b)` with `key = cost(a, b)`.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Entry {
    key: f64,
    tag: u64,
}

impl Entry {
    fn new(key: f64, kind: u8, a: u32, b: u32) -> Self {
        debug_assert!(u64::from(a) <= INDEX_MASK && u64::from(b) <= INDEX_MASK);
        Self {
            key,
            tag: (u64::from(kind) << (2 * INDEX_BITS))
                | (u64::from(a) << INDEX_BITS)
                | u64::from(b),
        }
    }

    fn kind(self) -> u8 {
        (self.tag >> (2 * INDEX_BITS)) as u8
    }

    fn a(self) -> u32 {
        ((self.tag >> INDEX_BITS) & INDEX_MASK) as u32
    }

    fn b(self) -> u32 {
        (self.tag & INDEX_MASK) as u32
    }

    /// Min-first order: key, then the packed `(kind, a, b)` tag.
    fn precedes(self, other: Self) -> bool {
        match self.key.total_cmp(&other.key) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.tag < other.tag,
        }
    }

    /// Whether this entry can still do useful work. Expansion and deferred
    /// entries need only their center node (`b` is a ring or slab-row
    /// index); pair entries need both endpoints.
    fn is_live(self, alive: &[bool]) -> bool {
        if self.kind() < KIND_BOUND {
            alive[self.a() as usize]
        } else {
            alive[self.a() as usize] && alive[self.b() as usize]
        }
    }
}

/// Children per heap node. A 4-ary layout keeps the tree half as deep as
/// a binary heap — pops on the multi-hundred-thousand-entry heaps of
/// r4/r5 are sift-down bound — while one node's children still share a
/// cache line (4 × 16 B entries).
const ARITY: usize = 4;

/// Min-first d-ary heap of [`Entry`] values with hole-based sifting (the
/// moving entry is held in a register and written once, instead of
/// swapping at every level) and in-place compaction of lazily-deleted
/// entries.
#[derive(Clone, Debug, Default)]
struct MinHeap {
    data: Vec<Entry>,
}

impl MinHeap {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn push(&mut self, entry: Entry) {
        self.data.push(entry);
        let mut i = self.data.len() - 1;
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if entry.precedes(self.data[parent]) {
                self.data[i] = self.data[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.data[i] = entry;
    }

    /// The minimum entry, without removing it.
    fn peek(&self) -> Option<Entry> {
        self.data.first().copied()
    }

    fn pop(&mut self) -> Option<Entry> {
        let top = *self.data.first()?;
        let last = self.data.pop();
        if let Some(last) = last {
            if !self.data.is_empty() {
                self.data[0] = last;
                self.sift_down(0);
            }
        }
        Some(top)
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.data.len();
        let entry = self.data[i];
        loop {
            let first = i * ARITY + 1;
            if first >= n {
                break;
            }
            let mut best = first;
            for child in (first + 1)..(first + ARITY).min(n) {
                if self.data[child].precedes(self.data[best]) {
                    best = child;
                }
            }
            if self.data[best].precedes(entry) {
                self.data[i] = self.data[best];
                i = best;
            } else {
                break;
            }
        }
        self.data[i] = entry;
    }

    /// Restores the heap property over arbitrary `data` in O(n).
    fn rebuild(&mut self) {
        let n = self.data.len();
        if n < 2 {
            return;
        }
        let mut i = (n - 2) / ARITY;
        loop {
            self.sift_down(i);
            if i == 0 {
                break;
            }
            i -= 1;
        }
    }

    /// Drops every lazily-deleted entry and re-heapifies in place. Safe at
    /// any time because removing elements never violates the order of the
    /// survivors' eventual pops — the heap is rebuilt from scratch.
    fn retain_live(&mut self, alive: &[bool]) {
        self.data.retain(|e| e.is_live(alive));
        self.rebuild();
    }
}

/// Candidate batches below this size are evaluated on the calling thread.
const PARALLEL_THRESHOLD: usize = 4_096;

/// Grid rings generated per leaf before the first expansion entry takes
/// over (ring 0 is the leaf's own cell). Seed rings are priced by the
/// parallel kernel sweep outside the merge loop, so a generous radius
/// trades cheap up-front pricing for in-loop expansion pops — under the
/// switched-capacitance objective, whose slow-growing bounds otherwise
/// keep expansion entries surfacing for most of the run.
const INITIAL_RINGS: usize = 6;

/// Worker-thread count for this run: explicit [`GreedyParams::threads`],
/// else the `GCR_THREADS` environment variable, else
/// `available_parallelism()`; clamped to `1..=MAX_THREADS`. Called once
/// per run (reading the environment allocates). Long-lived services
/// resolve once at startup and pin [`GreedyParams::threads`] instead.
///
/// Delegates to the workspace-shared resolver
/// ([`gcr_trace::threads::resolve`]) so the rejection policy and warn
/// wording cannot drift between engines; an unparsable `GCR_THREADS`
/// warns under `greedy.threads` and resolves to 1.
pub(crate) fn resolve_threads(params: &GreedyParams, tracer: &Tracer) -> usize {
    gcr_trace::threads::resolve(params.threads, "greedy.threads", tracer)
}

/// One row of the deferred-candidate slab: `(bound, partner)` candidates
/// of `center` (the `a` of the owning `KIND_DEFER` entry) in the slab
/// range `start..start + len`. Rows are written unordered (floods are
/// the hot path and most rows are never reopened) and turned into a
/// binary min-heap lazily on the first deferred pop; reopens then
/// extract candidates in bound order at `O(log len)` apiece, shrinking
/// `len` in place.
///
/// A `truncated` row holds only the [`ROW_KEEP`] cheapest candidates of
/// its flood batch; `thresh`/`tpartner` record the `(bound, partner)`
/// cutoff of what it kept. Draining one re-prices its center against the
/// current live set, keeping only candidates strictly above the cutoff —
/// the cutoff rises with every re-flood, so the row converges instead of
/// re-materializing pairs it already surfaced.
#[derive(Clone, Copy, Debug)]
struct SlabRow {
    start: u32,
    len: u32,
    thresh: f64,
    tpartner: u32,
    heaped: bool,
    truncated: bool,
}

/// Append-only storage for candidates whose bounds lost to their center
/// node's best known exact cost. Row ranges never move once pushed (only
/// their `cursor` advances), and the backing vectors retain their
/// high-water capacity across runs, preserving the zero-allocation warm
/// loop.
#[derive(Clone, Debug, Default)]
struct CandidateSlab {
    /// `(bound, partner)` pairs, grouped by row.
    items: Vec<(f64, u32)>,
    rows: Vec<SlabRow>,
}

impl CandidateSlab {
    fn clear(&mut self) {
        self.items.clear();
        self.rows.clear();
    }
}

/// Minimum number of slab candidates a deferred pop materializes (when
/// that many remain). Reopening a row costs a heap pop and a re-push, so
/// draining strictly by need — often a single candidate per pop — would
/// thrash the heap; batching keeps reopen traffic negligible while still
/// materializing only a sliver of each row.
const DEFER_BATCH: usize = 16;

/// Maximum number of candidates one reopen materializes. The reopen
/// window extends to the center's best known exact cost, and under the
/// switched-capacitance objective (whose lower bounds sit far below the
/// exact costs) that window can span most of a row; the cap keeps a
/// single pop from flooding the heap with entries whose endpoints will
/// be dead by the time they surface.
const DEFER_CAP: usize = 64;

/// Number of candidates a truncated flood row retains. Flood batches
/// span the whole live set, but only the cheapest few bounds ever become
/// competitive before the center itself merges; keeping a fixed-size
/// prefix keeps the slab inside the cache instead of growing
/// quadratically with the instance.
const ROW_KEEP: usize = 64;

/// Maximum rings one `KIND_EXPAND` pop consumes. Batching rings whose
/// keys fall inside the run-ahead window trades a bounded amount of
/// eager pricing for a proportional drop in heap pop/push cycles; the
/// cap keeps a pathologically wide window from dragging a whole quadrant
/// into one batch.
const RING_GATHER: usize = 16;

/// `(bound, partner)` ordering of the per-row min-heaps — the same
/// `(key, index)` tie-break the main heap uses, keeping extraction order
/// fully deterministic.
fn row_lt(p: (f64, u32), q: (f64, u32)) -> bool {
    p.0.total_cmp(&q.0).then(p.1.cmp(&q.1)).is_lt()
}

/// Restores the min-heap invariant of `items` downward from slot `i`.
fn row_sift_down(items: &mut [(f64, u32)], mut i: usize) {
    loop {
        let mut m = i;
        for c in [2 * i + 1, 2 * i + 2] {
            if c < items.len() && row_lt(items[c], items[m]) {
                m = c;
            }
        }
        if m == i {
            return;
        }
        items.swap(i, m);
        i = m;
    }
}

/// Floyd heap construction: `O(len)`, run once per row on first reopen.
fn row_heapify(items: &mut [(f64, u32)]) {
    for i in (0..items.len() / 2).rev() {
        row_sift_down(items, i);
    }
}

/// Reusable buffers of the greedy engines. Constructing one per run
/// reproduces the historical allocation profile; **reusing** one across
/// runs (plus an objective with pre-reserved storage) makes the merge
/// loop allocation-free, since every buffer here retains its high-water
/// capacity.
#[derive(Clone, Debug, Default)]
pub struct GreedyScratch {
    heap: MinHeap,
    alive: Vec<bool>,
    live: Vec<u32>,
    members: Vec<u32>,
    batch: Vec<(u32, u32)>,
    entries: Vec<Entry>,
    locations: Vec<Point>,
    merges: Vec<(usize, usize)>,
    /// Candidate node indices of the batch currently being priced.
    cand: Vec<u32>,
    /// Per-leaf offsets into `cand` during the seed sweep (CSR layout).
    cand_starts: Vec<u32>,
    /// `bound_batch` output column, parallel to `cand`.
    bounds: Vec<f64>,
    /// Best known exact cost touching each node (+∞ until its first
    /// exact evaluation) — the filtering threshold of the pruned engine.
    best_seen: Vec<f64>,
    /// `(bound, candidate)` staging buffer for the truncation quickselect
    /// in [`defer_row`].
    selbuf: Vec<(f64, u32)>,
    slab: CandidateSlab,
    /// Decision log of the last run, populated only under
    /// [`GreedyParams::log_decisions`].
    decisions: Vec<MergeDecision>,
}

impl GreedyScratch {
    /// Creates an empty scratch. Buffers grow on first use and are then
    /// reused.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The decision log of the most recent run through this scratch —
    /// empty unless that run set [`GreedyParams::log_decisions`].
    #[must_use]
    pub fn decisions(&self) -> &[MergeDecision] {
        &self.decisions
    }

    /// Takes ownership of the last run's decision log, leaving the
    /// scratch's buffer empty (it regrows on the next logged run).
    #[must_use]
    pub fn take_decisions(&mut self) -> Vec<MergeDecision> {
        std::mem::take(&mut self.decisions)
    }

    /// Clears every buffer and sizes the liveness state for a run over
    /// `total = 2 * num_leaves - 1` nodes with leaves `0..num_leaves`
    /// initially alive.
    fn reset(&mut self, total: usize, num_leaves: usize) {
        self.heap.data.clear();
        self.alive.clear();
        self.alive.resize(total, false);
        self.alive[..num_leaves].fill(true);
        self.live.clear();
        self.live.extend(0..num_leaves as u32);
        self.members.clear();
        self.batch.clear();
        self.entries.clear();
        self.locations.clear();
        self.merges.clear();
        self.cand.clear();
        self.cand_starts.clear();
        self.bounds.clear();
        self.best_seen.clear();
        self.best_seen.resize(total, f64::INFINITY);
        self.selbuf.clear();
        self.slab.clear();
        self.decisions.clear();
    }
}

/// Shadow-invariant micro-checks, compiled into the greedy warm loop by
/// the `shadow-invariants` cargo feature. Each hook is an `#[inline]`
/// assertion over values the loop already holds in registers; with the
/// feature off the functions below are empty and vanish entirely, so the
/// default build's hot loop (and its zero-allocation profile) is
/// untouched.
#[cfg(feature = "shadow-invariants")]
mod shadow {
    use super::{Entry, MinHeap, Point};

    /// After a pop, the new heap top must not precede the popped entry in
    /// the strict `(key, kind, a, b)` total order — a cheap online probe
    /// of the 4-ary sift-down.
    #[inline]
    pub(super) fn heap_monotone(heap: &MinHeap, popped: Entry) {
        if let Some(top) = heap.peek() {
            assert!(
                !top.precedes(popped),
                "shadow-invariants: heap top {top:?} precedes the entry just popped {popped:?}"
            );
        }
    }

    /// Admissibility, observed online: the exact cost evaluated for a
    /// popped `KIND_BOUND` entry must not undercut the bound it was
    /// priced at (non-negative bound slack).
    #[inline]
    pub(super) fn bound_slack(bound: f64, exact: f64, a: usize, b: usize) {
        assert!(
            exact >= bound,
            "shadow-invariants: exact cost {exact} of ({a}, {b}) undercuts its lower bound \
             {bound}; the bound is inadmissible"
        );
    }

    /// Arena index consistency at a merge commit: partners below the new
    /// node, the new node inside the run's index budget.
    #[inline]
    pub(super) fn merge_indices(a: usize, b: usize, next: usize, total: usize) {
        assert!(
            a < b && b < next && next < total,
            "shadow-invariants: merge ({a}, {b}) -> {next} breaks index order (total {total})"
        );
    }

    /// The merged node's location must be finite — a NaN or infinite
    /// coordinate here poisons every later distance and bound.
    #[inline]
    pub(super) fn finite_location(loc: Point, node: usize) {
        assert!(
            loc.x.is_finite() && loc.y.is_finite(),
            "shadow-invariants: merged node {node} placed at non-finite ({}, {})",
            loc.x,
            loc.y
        );
    }
}

/// No-op twins of the shadow hooks: empty `#[inline]` functions that the
/// optimizer erases, keeping call sites unconditional.
#[cfg(not(feature = "shadow-invariants"))]
mod shadow {
    use super::{Entry, MinHeap, Point};

    #[inline]
    pub(super) fn heap_monotone(_heap: &MinHeap, _popped: Entry) {}

    #[inline]
    pub(super) fn bound_slack(_bound: f64, _exact: f64, _a: usize, _b: usize) {}

    #[inline]
    pub(super) fn merge_indices(_a: usize, _b: usize, _next: usize, _total: usize) {}

    #[inline]
    pub(super) fn finite_location(_loc: Point, _node: usize) {}
}

/// Evaluates the exact cost of every pair, appending `KIND_EXACT` entries
/// to `out` (the exhaustive engine's batch path). Batches of at least
/// [`PARALLEL_THRESHOLD`] fan out across `threads` workers.
/// Deterministic: per-pair results do not depend on evaluation order, and
/// the heap's strict total order makes the pop sequence independent of
/// insertion order.
#[expect(
    clippy::expect_used,
    reason = "a panicking cost worker must propagate, not be swallowed"
)]
fn evaluate_exact_pairs_into<O: MergeObjective>(
    objective: &O,
    pairs: &[(u32, u32)],
    threads: usize,
    out: &mut Vec<Entry>,
) {
    let eval = move |&(a, b): &(u32, u32)| {
        let key = objective.cost(a as usize, b as usize);
        assert!(!key.is_nan(), "merge cost of ({a}, {b}) is NaN");
        Entry::new(key, KIND_EXACT, a, b)
    };
    if pairs.len() < PARALLEL_THRESHOLD || threads == 1 {
        out.extend(pairs.iter().map(eval));
        return;
    }
    let chunk = pairs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|slice| scope.spawn(move || slice.iter().map(eval).collect::<Vec<_>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("cost worker panicked"));
        }
    });
}

/// Prices one center node against a candidate batch via
/// [`MergeObjective::bound_batch`], sharding the batch across `threads`
/// workers when it is at least [`PARALLEL_THRESHOLD`] long. Each worker
/// writes a disjoint `bounds` sub-slice, so the output is independent of
/// the sharding (and of `threads`).
fn bound_batch_sharded<O: MergeObjective>(
    objective: &O,
    center: usize,
    candidates: &[u32],
    bounds: &mut [f64],
    threads: usize,
) {
    if candidates.len() < PARALLEL_THRESHOLD || threads == 1 {
        objective.bound_batch(center, candidates, bounds);
        return;
    }
    let chunk = candidates.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (cs, bs) in candidates.chunks(chunk).zip(bounds.chunks_mut(chunk)) {
            scope.spawn(move || objective.bound_batch(center, cs, bs));
        }
    });
}

/// Prices the seed phase's per-leaf candidate lists (CSR layout:
/// `starts[x]..starts[x + 1]` indexes `cand` for leaf `x`) with one
/// [`MergeObjective::bound_batch`] call per leaf, fanning contiguous leaf
/// ranges across `threads` workers when the flood is large. Results are
/// independent of the leaf partitioning.
fn seed_bound_batches<O: MergeObjective>(
    objective: &O,
    cand: &[u32],
    starts: &[u32],
    bounds: &mut [f64],
    threads: usize,
) {
    let num_centers = starts.len() - 1;
    let price_range = |range: std::ops::Range<usize>, out: &mut [f64]| {
        let base = starts[range.start] as usize;
        for x in range {
            let (s, e) = (starts[x] as usize, starts[x + 1] as usize);
            if e > s {
                objective.bound_batch(x, &cand[s..e], &mut out[s - base..e - base]);
            }
        }
    };
    if cand.len() < PARALLEL_THRESHOLD || threads == 1 {
        price_range(0..num_centers, bounds);
        return;
    }
    let price_range = &price_range;
    std::thread::scope(|scope| {
        let mut rest = bounds;
        let mut begin = 0;
        for t in 0..threads {
            let end = ((t + 1) * num_centers) / threads;
            if end <= begin {
                continue;
            }
            let len = (starts[end] - starts[begin]) as usize;
            let (mine, tail) = rest.split_at_mut(len);
            rest = tail;
            let range = begin..end;
            scope.spawn(move || price_range(range, mine));
            begin = end;
        }
    });
}

/// Gathers the seed-phase candidate lists of the leaves in `range`:
/// rings `0..=INITIAL_RINGS` of each leaf, keeping higher-indexed
/// partners so every pair appears once, appended to `cand` with the
/// per-leaf candidate count pushed to `counts`. A pure function of the
/// grid and the range — disjoint ranges gathered on separate workers and
/// concatenated in leaf order reproduce the serial sweep exactly.
fn gather_seed_rings(
    grid: &BucketGrid,
    locations: &[Point],
    range: std::ops::Range<usize>,
    members: &mut Vec<u32>,
    cand: &mut Vec<u32>,
    counts: &mut Vec<u32>,
) {
    for x in range {
        let before = cand.len();
        for ring in 0..=INITIAL_RINGS {
            grid.ring_members(locations[x], ring, members);
            cand.extend(members.iter().copied().filter(|&y| (y as usize) > x));
        }
        counts.push((cand.len() - before) as u32);
    }
}

/// Sharded seed ring sweep: contiguous leaf ranges gathered on `threads`
/// workers (each with its own buffers), concatenated in leaf order into
/// the CSR `cand` / `cand_starts` pair. The combined batch is identical
/// to the serial sweep's at any thread count.
#[expect(
    clippy::expect_used,
    reason = "a panicking ring-sweep worker must propagate, not be swallowed"
)]
fn gather_seed_rings_sharded(
    grid: &BucketGrid,
    locations: &[Point],
    threads: usize,
    cand: &mut Vec<u32>,
    cand_starts: &mut Vec<u32>,
) {
    let num_leaves = locations.len();
    let chunk = num_leaves.div_ceil(threads);
    let parts: Vec<(Vec<u32>, Vec<u32>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..num_leaves)
            .step_by(chunk)
            .map(|lo| {
                let hi = (lo + chunk).min(num_leaves);
                scope.spawn(move || {
                    let mut members = Vec::new();
                    let mut part = Vec::new();
                    let mut counts = Vec::with_capacity(hi - lo);
                    gather_seed_rings(
                        grid,
                        locations,
                        lo..hi,
                        &mut members,
                        &mut part,
                        &mut counts,
                    );
                    (part, counts)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("seed ring-sweep worker panicked"))
            .collect()
    });
    for (part, counts) in parts {
        cand.extend_from_slice(&part);
        for c in counts {
            let prev = cand_starts[cand_starts.len() - 1];
            cand_starts.push(prev + c);
        }
    }
}

/// Routes one priced candidate batch of `center`: the minimum bound goes
/// straight to the heap (it is the candidate a greedy commit will want,
/// so parking it would only force a row reopen later), and the rest are
/// parked in a fresh slab row covered by a single `KIND_DEFER` entry
/// keyed at the remainder's minimum bound — an admissible stand-in for
/// every parked pair, so deferral never changes the committed merges. No
/// parked candidate touches the heap until the row's key actually
/// surfaces; rows whose center merges first cost one lazy-deleted pop in
/// total.
///
/// With `truncate` set (flood batches), only the [`ROW_KEEP`] cheapest
/// candidates are stored; the rest stay representable by the row's
/// cutoff and are re-priced on demand. `floor` (from a draining
/// truncated row) drops every candidate at or below the previous cutoff,
/// keeping re-floods disjoint from what earlier rows already surfaced.
#[allow(clippy::too_many_arguments)]
fn defer_row(
    heap: &mut MinHeap,
    slab: &mut CandidateSlab,
    selbuf: &mut Vec<(f64, u32)>,
    stats: &mut GreedyStats,
    center: u32,
    cand: &[u32],
    bounds: &[f64],
    truncate: bool,
    floor: Option<(f64, u32)>,
) {
    // Sentinel form of the floor cutoff: with no floor, every finite key
    // beats `-inf` in one predictable comparison, so the filter costs
    // nothing on the (dominant) un-floored flood path.
    let (fkey, fy) = floor.unwrap_or((f64::NEG_INFINITY, 0));
    let below_floor = |key: f64, y: u32| key <= fkey && !row_lt((fkey, fy), (key, y));
    if !truncate {
        // Small batch (seed ring / expansion ring): store verbatim.
        let mut lead = (f64::INFINITY, u32::MAX);
        let mut k = 0_usize;
        for (&y, &key) in cand.iter().zip(bounds) {
            assert!(!key.is_nan(), "merge bound of ({y}, {center}) is NaN");
            if below_floor(key, y) {
                continue;
            }
            k += 1;
            if row_lt((key, y), lead) {
                lead = (key, y);
            }
        }
        if k == 0 {
            return;
        }
        push_bound(heap, center, lead.1, lead.0);
        let row_start = slab.items.len();
        let mut deferred_min = (f64::INFINITY, u32::MAX);
        let mut skipped_lead = false;
        for (&y, &key) in cand.iter().zip(bounds) {
            if below_floor(key, y) {
                continue;
            }
            if !skipped_lead && (key, y) == lead {
                skipped_lead = true;
                continue;
            }
            slab.items.push((key, y));
            if row_lt((key, y), deferred_min) {
                deferred_min = (key, y);
            }
        }
        finish_row(
            heap,
            slab,
            stats,
            center,
            row_start,
            deferred_min.0,
            false,
            (0.0, 0),
        );
        return;
    }
    // Truncation path: stage the batch, then one quickselect puts the
    // ROW_KEEP + 1 cheapest candidates (under `row_lt`) in front — O(n)
    // with no per-item heap churn, and the pivot element itself is the
    // cutoff every discarded candidate strictly exceeds, which is what
    // lets a future re-flood reconstruct exactly the tail this row never
    // held.
    selbuf.clear();
    for (&y, &key) in cand.iter().zip(bounds) {
        assert!(!key.is_nan(), "merge bound of ({y}, {center}) is NaN");
        if below_floor(key, y) {
            continue;
        }
        selbuf.push((key, y));
    }
    if selbuf.is_empty() {
        return;
    }
    let truncated = selbuf.len() > ROW_KEEP + 1;
    let mut cutoff = (0.0, 0);
    if truncated {
        selbuf.select_nth_unstable_by(ROW_KEEP, |p, q| p.0.total_cmp(&q.0).then(p.1.cmp(&q.1)));
        cutoff = selbuf[ROW_KEEP];
        selbuf.truncate(ROW_KEEP + 1);
    }
    let mut best_i = 0;
    for i in 1..selbuf.len() {
        if row_lt(selbuf[i], selbuf[best_i]) {
            best_i = i;
        }
    }
    let (lead_key, lead) = selbuf[best_i];
    push_bound(heap, center, lead, lead_key);
    let row_start = slab.items.len();
    let mut deferred_min = (f64::INFINITY, u32::MAX);
    for (i, &item) in selbuf.iter().enumerate() {
        if i == best_i {
            continue;
        }
        slab.items.push(item);
        if row_lt(item, deferred_min) {
            deferred_min = item;
        }
    }
    finish_row(
        heap,
        slab,
        stats,
        center,
        row_start,
        deferred_min.0,
        truncated,
        cutoff,
    );
}

/// Pushes the `KIND_BOUND` entry of `(center, y)` in canonical `(lo, hi)`
/// orientation.
fn push_bound(heap: &mut MinHeap, center: u32, y: u32, key: f64) {
    let (lo, hi) = if y < center { (y, center) } else { (center, y) };
    heap.push(Entry::new(key, KIND_BOUND, lo, hi));
}

/// Seals a slab row started at `row_start` and pushes its covering
/// `KIND_DEFER` entry (a no-op for an empty, non-truncated row).
#[allow(clippy::too_many_arguments)]
fn finish_row(
    heap: &mut MinHeap,
    slab: &mut CandidateSlab,
    stats: &mut GreedyStats,
    center: u32,
    row_start: usize,
    deferred_min: f64,
    truncated: bool,
    cutoff: (f64, u32),
) {
    let len = slab.items.len() - row_start;
    if len == 0 && !truncated {
        return;
    }
    let row_id = slab.rows.len() as u32;
    debug_assert!(u64::from(row_id) <= INDEX_MASK);
    slab.rows.push(SlabRow {
        start: row_start as u32,
        len: len as u32,
        thresh: cutoff.0,
        tpartner: cutoff.1,
        heaped: false,
        truncated,
    });
    stats.bounds_filtered += len as u64;
    heap.push(Entry::new(deferred_min, KIND_DEFER, center, row_id));
}

/// Heap key of leaf `x`'s next expansion entry, which stands in for every
/// pair of `x` not yet generated: those partners live in grid rings
/// `>= ring`, hence at Manhattan distance `> (ring - 1) * cell` — an
/// admissible bound by the `cost_lower_bound_at_distance` contract.
/// `None` once every cell has been swept.
fn expansion_key<O: MergeObjective>(
    objective: &O,
    grid: &BucketGrid,
    x: usize,
    location: Point,
    ring: usize,
) -> Option<f64> {
    if ring > grid.max_ring(location) {
        return None;
    }
    let dist = grid.cell_size() * (ring - 1) as f64;
    let key = objective.cost_lower_bound_at_distance(x, dist);
    assert!(!key.is_nan(), "expansion bound of leaf {x} is NaN");
    Some(key)
}

/// Runs the paper's greedy bottom-up merge loop: repeatedly merge the live
/// pair of minimum cost until a single root remains, returning the
/// resulting [`Topology`].
///
/// This is the **pruned** engine: candidates start as cheap admissible
/// lower bounds generated from a bucket grid over the sink locations
/// (Edahiro \[3\]) in on-demand expansion rings, and the exact cost is
/// computed only when a bound surfaces at the top of the heap — i.e. only
/// when it is competitive with the best known exact cost. Candidate
/// batches (seed rings, ring expansions, post-merge floods) are priced by
/// the objective's vectorized [`bound_batch`](MergeObjective::bound_batch)
/// kernel, and only each batch's cheapest candidate becomes a heap entry;
/// the rest wait in a slab row covered by a single deferred entry keyed
/// at their minimum bound, released in small batches only when that
/// minimum becomes competitive with the center's best known cost (see
/// docs/performance.md §Bound kernels and candidate filtering). Best-first
/// search with admissible bounds commits exactly the merges of
/// [`run_greedy_exhaustive`], bit-identically (see
/// [`MergeObjective`]'s exactness contract), while evaluating a small
/// fraction of the exact costs.
///
/// # Errors
///
/// Returns [`CtsError::NoSinks`] when `num_leaves == 0`,
/// [`CtsError::CapacityExceeded`] when `2 * num_leaves - 1` overflows the
/// 31-bit node-index budget of the packed heap entries, and propagates
/// [`CtsError::MergeRegionDisjoint`] from the objective's `merge`.
///
/// # Panics
///
/// Panics if the objective returns a NaN cost or bound.
pub fn run_greedy<O: MergeObjective>(
    num_leaves: usize,
    objective: &mut O,
) -> Result<Topology, CtsError> {
    run_greedy_instrumented(num_leaves, objective).map(|(topology, _)| topology)
}

/// [`run_greedy`] reporting phase spans, loop sub-phases, and counters
/// through `tracer` (see [`run_greedy_with_scratch_traced`] for the span
/// taxonomy). The committed merges are bit-identical to [`run_greedy`]'s
/// at any tracing state — instrumentation never influences the search.
///
/// # Errors
///
/// As [`run_greedy`].
pub fn run_greedy_traced<O: MergeObjective>(
    num_leaves: usize,
    objective: &mut O,
    tracer: &Tracer,
) -> Result<Topology, CtsError> {
    let mut scratch = GreedyScratch::new();
    run_greedy_with_scratch_traced(
        num_leaves,
        objective,
        &GreedyParams::default(),
        &mut scratch,
        tracer,
    )
    .map(|(topology, _, _)| topology)
}

/// [`run_greedy`] with its [`GreedyStats`] instrumentation.
///
/// # Errors
///
/// As [`run_greedy`].
pub fn run_greedy_instrumented<O: MergeObjective>(
    num_leaves: usize,
    objective: &mut O,
) -> Result<(Topology, GreedyStats), CtsError> {
    let mut scratch = GreedyScratch::new();
    run_greedy_with_scratch(
        num_leaves,
        objective,
        &GreedyParams::default(),
        &mut scratch,
    )
    .map(|(topology, stats, _)| (topology, stats))
}

/// The pruned engine with explicit [`GreedyParams`] and a caller-owned
/// [`GreedyScratch`], returning the per-phase [`GreedyProfile`] alongside
/// the stats. This is the allocation-free entry point: on a warm scratch
/// (second run of the same size) the merge loop performs no heap
/// allocations.
///
/// # Errors
///
/// As [`run_greedy`].
///
/// # Panics
///
/// Panics if the objective returns a NaN cost or bound.
pub fn run_greedy_with_scratch<O: MergeObjective>(
    num_leaves: usize,
    objective: &mut O,
    params: &GreedyParams,
    scratch: &mut GreedyScratch,
) -> Result<(Topology, GreedyStats, GreedyProfile), CtsError> {
    run_greedy_with_scratch_traced(num_leaves, objective, params, scratch, &Tracer::disabled())
}

/// [`run_greedy_with_scratch`] reporting phase spans, per-kind loop
/// sub-phases (`greedy.ring` / `greedy.defer` / `greedy.bound` /
/// `greedy.merge`) and the [`GreedyStats`] counters through `tracer`.
///
/// The merge loop itself never calls the tracer: per-kind wall time is
/// accumulated in plain stack integers and emitted as aggregated
/// [`complete-span`](Tracer::complete_span) events after the loop's
/// allocation window closes, so `loop_allocs == 0` holds on a warm
/// scratch even under an **active** sink.
///
/// # Errors
///
/// As [`run_greedy`].
///
/// # Panics
///
/// As [`run_greedy_with_scratch`].
#[expect(
    clippy::expect_used,
    reason = "every live pair is covered by a bound, exact, expansion, or \
              deferred entry until one root remains (see the coverage \
              argument in docs/algorithms.md §Candidate pruning)"
)]
pub fn run_greedy_with_scratch_traced<O: MergeObjective>(
    num_leaves: usize,
    objective: &mut O,
    params: &GreedyParams,
    scratch: &mut GreedyScratch,
    tracer: &Tracer,
) -> Result<(Topology, GreedyStats, GreedyProfile), CtsError> {
    let mut stats = GreedyStats::default();
    let mut profile = GreedyProfile::default();
    if num_leaves == 0 {
        return Err(CtsError::NoSinks);
    }
    if num_leaves == 1 {
        return Ok((Topology::single_sink()?, stats, profile));
    }

    let _run = tracer.span("greedy.run");
    let seed_span_start = tracer.now_ns();
    let seed_start = Instant::now();
    let seed_allocs0 = alloc_count();
    let threads = resolve_threads(params, tracer);
    // Checked before any storage is sized: past this limit the packed
    // heap tags and the u32 arena/tree columns would silently truncate
    // node indices, so the only safe answer is an error up front.
    let total = num_leaves.saturating_mul(2).saturating_sub(1);
    if total > NODE_INDEX_LIMIT {
        return Err(CtsError::CapacityExceeded {
            nodes: total,
            limit: NODE_INDEX_LIMIT,
        });
    }
    scratch.reset(total, num_leaves);
    let GreedyScratch {
        heap,
        alive,
        live,
        members,
        locations,
        merges,
        cand,
        cand_starts,
        bounds,
        best_seen,
        selbuf,
        slab,
        decisions,
        ..
    } = scratch;

    locations.extend((0..num_leaves).map(|i| objective.location(i)));
    let mut grid = BucketGrid::build(locations);

    // Seed: every leaf's nearby rings as one slab row (each pair once,
    // from its lower-index endpoint), plus one expansion entry per leaf
    // standing in for all farther partners. Candidate lists are gathered
    // into one flat CSR batch, priced by the vectorized bound kernels
    // (fanned across the worker pool on large instances), then parked in
    // the slab — the heap starts with two entries per leaf and only ever
    // sees candidates whose bounds actually become competitive.
    cand_starts.push(0);
    if num_leaves >= PARALLEL_THRESHOLD && threads > 1 {
        gather_seed_rings_sharded(&grid, locations, threads, cand, cand_starts);
    } else {
        gather_seed_rings(&grid, locations, 0..num_leaves, members, cand, cand_starts);
        // `gather_seed_rings` pushed per-leaf counts; turn them into the
        // cumulative CSR starts in place.
        for i in 1..cand_starts.len() {
            cand_starts[i] += cand_starts[i - 1];
        }
    }
    stats.ring_expansions += (num_leaves * (INITIAL_RINGS + 1)) as u64;
    for (x, &loc) in locations.iter().enumerate() {
        if let Some(key) = expansion_key(&*objective, &grid, x, loc, INITIAL_RINGS + 1) {
            heap.push(Entry::new(
                key,
                KIND_EXPAND,
                x as u32,
                (INITIAL_RINGS + 1) as u32,
            ));
        }
    }
    stats.bound_evals += cand.len() as u64;
    stats.bound_batches += cand_starts.windows(2).filter(|w| w[1] > w[0]).count() as u64;
    bounds.resize(cand.len(), 0.0);
    seed_bound_batches(&*objective, cand, cand_starts, bounds, threads);
    for x in 0..num_leaves {
        let (s, e) = (cand_starts[x] as usize, cand_starts[x + 1] as usize);
        defer_row(
            heap,
            slab,
            selbuf,
            &mut stats,
            x as u32,
            &cand[s..e],
            &bounds[s..e],
            false,
            None,
        );
    }
    profile.seed_ms = seed_start.elapsed().as_secs_f64() * 1e3;
    profile.seed_allocs = alloc_count() - seed_allocs0;
    tracer.complete_span(
        "greedy.seed",
        seed_span_start,
        elapsed_ns(seed_start.elapsed()),
    );

    // Per-kind loop time, accumulated in stack integers so the measured
    // loop window stays free of tracer calls (and of their allocations).
    // Each iteration charges the interval since the previous pop to the
    // previous entry's kind — `continue`-safe, since the charge happens
    // at the *top* of the iteration.
    let trace_kinds = tracer.enabled();
    let mut kind_ns = [0_u64; 4];
    let mut last_kind: Option<u8> = None;
    let loop_span_start = tracer.now_ns();
    let loop_start = Instant::now();
    let mut t_last = loop_start;
    let loop_allocs0 = alloc_count();
    let mut next = num_leaves;
    // Live *leaf* count, used to retire ring expansions whose perimeter
    // sweeps would outcost a flat sweep over the surviving leaves.
    let mut live_leaves = num_leaves;
    // Compact the heap (drop lazily-deleted entries) whenever it doubles
    // past the last compacted size — amortized O(total work) while keeping
    // the heap within a constant factor of its live contents.
    let mut watermark = heap.len() * 2 + 1024;
    while next < total {
        if trace_kinds {
            let now = Instant::now();
            if let Some(k) = last_kind {
                kind_ns[k as usize] += elapsed_ns(now - t_last);
            }
            t_last = now;
        }
        let entry = heap.pop().expect("heap exhausted before root was formed");
        shadow::heap_monotone(heap, entry);
        stats.heap_pops += 1;
        last_kind = Some(entry.kind());
        let (a, b) = (entry.a(), entry.b());
        match entry.kind() {
            KIND_EXPAND => {
                let x = a as usize;
                if !alive[x] {
                    continue;
                }
                let mut ring = b as usize;
                // Ring sweeps pay off while live leaves are dense; once a
                // ring's perimeter holds more cells than there are live
                // leaves left, pricing every remaining leaf in one kernel
                // sweep is cheaper than chasing them ring by ring — and
                // it retires this leaf's expansion entry for good, since
                // afterwards every pair of `x` is priced and parked.
                if live_leaves <= 8 * ring {
                    cand.clear();
                    cand.extend(
                        live.iter()
                            .copied()
                            .filter(|&y| (y as usize) < num_leaves && (y as usize) > x),
                    );
                    if !cand.is_empty() {
                        bounds.clear();
                        bounds.resize(cand.len(), 0.0);
                        bound_batch_sharded(&*objective, x, cand, bounds, threads);
                        stats.bound_batches += 1;
                        stats.bound_evals += cand.len() as u64;
                        defer_row(heap, slab, selbuf, &mut stats, a, cand, bounds, false, None);
                    }
                    continue;
                }
                // Gather several rings per pop. A ring whose expansion
                // key is below the next heap entry would pop right back
                // as the very next entry anyway, and one inside the
                // center's best known exact cost is all but certain to
                // pop before `x` merges; consuming those rings now — one
                // combined kernel batch and one slab row instead of a
                // pop/push cycle per ring — removes heap traffic without
                // changing the committed merges (pricing extra pairs at
                // admissible keys never can).
                let mut tau = heap.peek().map_or(entry.key, |top| entry.key.max(top.key));
                if best_seen[x].is_finite() {
                    tau = tau.max(best_seen[x]);
                }
                cand.clear();
                let mut gathered = 0_usize;
                let next_key = loop {
                    stats.ring_expansions += 1;
                    grid.ring_members(locations[x], ring, members);
                    cand.extend(
                        members
                            .iter()
                            .copied()
                            .filter(|&y| (y as usize) > x && alive[y as usize]),
                    );
                    gathered += 1;
                    ring += 1;
                    let next = expansion_key(&*objective, &grid, x, locations[x], ring);
                    match next {
                        Some(key)
                            if key <= tau && gathered < RING_GATHER && cand.len() < ROW_KEEP =>
                        {
                            continue;
                        }
                        _ => break next,
                    }
                };
                if !cand.is_empty() {
                    bounds.clear();
                    bounds.resize(cand.len(), 0.0);
                    bound_batch_sharded(&*objective, x, cand, bounds, threads);
                    stats.bound_batches += 1;
                    stats.bound_evals += cand.len() as u64;
                    defer_row(heap, slab, selbuf, &mut stats, a, cand, bounds, false, None);
                }
                if let Some(key) = next_key {
                    heap.push(Entry::new(key, KIND_EXPAND, a, ring as u32));
                }
            }
            KIND_DEFER => {
                let center = a as usize;
                if !alive[center] {
                    continue; // lazy deletion
                }
                // Re-open the slab row: the popped key (the row's minimum
                // remaining bound) is now competitive. Heapify the row on
                // first reopen, then extract candidates in bound order —
                // up to the center's best known exact cost, and at least
                // DEFER_BATCH live candidates, so a row drained under
                // heap pressure doesn't thrash one pop per candidate —
                // and re-cover the remainder at its minimum bound.
                let row = slab.rows[b as usize];
                let start = row.start as usize;
                let mut len = row.len as usize;
                if !row.heaped {
                    row_heapify(&mut slab.items[start..start + len]);
                }
                let tau = if best_seen[center].is_finite() {
                    entry.key.max(best_seen[center])
                } else {
                    entry.key
                };
                let mut pushed = 0usize;
                while len > 0 && pushed < DEFER_CAP {
                    let (key, y) = slab.items[start];
                    if key > tau && pushed >= DEFER_BATCH {
                        break;
                    }
                    slab.items[start] = slab.items[start + len - 1];
                    len -= 1;
                    row_sift_down(&mut slab.items[start..start + len], 0);
                    if alive[y as usize] {
                        let (lo, hi) = if y < a { (y, a) } else { (a, y) };
                        heap.push(Entry::new(key, KIND_BOUND, lo, hi));
                        pushed += 1;
                    }
                }
                stats.bounds_filtered -= pushed as u64;
                slab.rows[b as usize] = SlabRow {
                    len: len as u32,
                    heaped: true,
                    ..row
                };
                if len > 0 {
                    heap.push(Entry::new(slab.items[start].0, KIND_DEFER, a, b));
                } else if row.truncated {
                    // The stored prefix is spent but the flood this row
                    // came from was truncated: re-price the center
                    // against the current live set, keeping only
                    // candidates strictly above the recorded cutoff.
                    // Everything at or below it was either stored here
                    // or is covered by a younger node's own flood row,
                    // and the cutoff rises strictly per re-flood, so
                    // this converges.
                    cand.clear();
                    cand.extend(live.iter().copied().filter(|&y| y != a));
                    if !cand.is_empty() {
                        bounds.clear();
                        bounds.resize(cand.len(), 0.0);
                        bound_batch_sharded(&*objective, center, cand, bounds, threads);
                        stats.bound_batches += 1;
                        stats.bound_evals += cand.len() as u64;
                        defer_row(
                            heap,
                            slab,
                            selbuf,
                            &mut stats,
                            a,
                            cand,
                            bounds,
                            true,
                            Some((row.thresh, row.tpartner)),
                        );
                    }
                }
            }
            KIND_BOUND => {
                let (x, y) = (a as usize, b as usize);
                if !alive[x] || !alive[y] {
                    continue; // lazy deletion
                }
                let key = objective.cost(x, y);
                stats.exact_cost_evals += 1;
                assert!(!key.is_nan(), "merge cost of ({x}, {y}) is NaN");
                shadow::bound_slack(entry.key, key, x, y);
                best_seen[x] = best_seen[x].min(key);
                best_seen[y] = best_seen[y].min(key);
                heap.push(Entry::new(key, KIND_EXACT, a, b));
            }
            _ => {
                let (x, y) = (a as usize, b as usize);
                if !alive[x] || !alive[y] {
                    continue; // lazy deletion
                }
                shadow::merge_indices(x, y, next, total);
                alive[x] = false;
                alive[y] = false;
                // Retire dead leaves from the bucket grid so later ring
                // sweeps skip their cells entirely.
                if x < num_leaves {
                    live_leaves -= 1;
                    grid.mark_dead(x);
                }
                if y < num_leaves {
                    live_leaves -= 1;
                    grid.mark_dead(y);
                }
                objective.merge(x, y, next)?;
                shadow::finite_location(objective.location(next), next);
                merges.push((x, y));
                if params.log_decisions {
                    decisions.push(MergeDecision {
                        a,
                        b,
                        node: next as u32,
                        key_bits: entry.key.to_bits(),
                    });
                }
                live.retain(|&n| alive[n as usize]);
                // Flood: price the new node against the whole live set in
                // one kernel sweep and park the entire batch in the slab.
                // Nothing reaches the heap unless the row's minimum bound
                // becomes competitive before the new node itself merges.
                cand.clear();
                cand.extend_from_slice(live);
                if !cand.is_empty() {
                    bounds.clear();
                    bounds.resize(cand.len(), 0.0);
                    bound_batch_sharded(&*objective, next, cand, bounds, threads);
                    stats.bound_batches += 1;
                    stats.bound_evals += cand.len() as u64;
                    defer_row(
                        heap,
                        slab,
                        selbuf,
                        &mut stats,
                        next as u32,
                        cand,
                        bounds,
                        true,
                        None,
                    );
                }
                alive[next] = true;
                live.push(next as u32);
                next += 1;
                if heap.len() > watermark {
                    heap.retain_live(alive);
                    watermark = heap.len() * 2 + 1024;
                }
            }
        }
    }
    profile.loop_ms = loop_start.elapsed().as_secs_f64() * 1e3;
    profile.loop_allocs = alloc_count() - loop_allocs0;
    if trace_kinds {
        if let Some(k) = last_kind {
            kind_ns[k as usize] += elapsed_ns(t_last.elapsed());
        }
        // The loop's allocation window is closed; events may allocate now.
        tracer.complete_span(
            "greedy.loop",
            loop_span_start,
            elapsed_ns(loop_start.elapsed()),
        );
        // Aggregated per-kind sub-phases, laid out back to back inside the
        // loop interval so a Chrome-trace viewer shows their proportions.
        let mut at = loop_span_start;
        for (name, ns) in [
            ("greedy.ring", kind_ns[KIND_EXPAND as usize]),
            ("greedy.defer", kind_ns[KIND_DEFER as usize]),
            ("greedy.bound", kind_ns[KIND_BOUND as usize]),
            ("greedy.merge", kind_ns[KIND_EXACT as usize]),
        ] {
            tracer.complete_span(name, at, ns);
            at = at.saturating_add(ns);
        }
        emit_greedy_counters(tracer, &stats, &profile);
    }

    Ok((Topology::from_merges(num_leaves, merges)?, stats, profile))
}

/// Reports the [`GreedyStats`] counters and the profile's allocation
/// counts through `tracer` (names under `greedy.`; see
/// `docs/observability.md`).
fn emit_greedy_counters(tracer: &Tracer, stats: &GreedyStats, profile: &GreedyProfile) {
    tracer.counter("greedy.exact_cost_evals", stats.exact_cost_evals as f64);
    tracer.counter("greedy.bound_evals", stats.bound_evals as f64);
    tracer.counter("greedy.ring_expansions", stats.ring_expansions as f64);
    tracer.counter("greedy.heap_pops", stats.heap_pops as f64);
    tracer.counter("greedy.bound_batches", stats.bound_batches as f64);
    tracer.counter("greedy.bounds_filtered", stats.bounds_filtered as f64);
    tracer.counter("greedy.seed_allocs", profile.seed_allocs as f64);
    tracer.counter("greedy.loop_allocs", profile.loop_allocs as f64);
}

/// The pre-pruning engine: evaluates the exact cost of **every** live pair
/// (~N²/2 initial candidates plus a full live-set sweep per merge). Kept
/// as the reference implementation for [`run_greedy_checked`], the
/// property tests, and the `BENCH_greedy` baselines.
///
/// # Errors
///
/// As [`run_greedy`].
pub fn run_greedy_exhaustive<O: MergeObjective>(
    num_leaves: usize,
    objective: &mut O,
) -> Result<Topology, CtsError> {
    run_greedy_exhaustive_instrumented(num_leaves, objective).map(|(topology, _)| topology)
}

/// [`run_greedy_exhaustive`] with its [`GreedyStats`] instrumentation.
///
/// # Errors
///
/// As [`run_greedy`].
pub fn run_greedy_exhaustive_instrumented<O: MergeObjective>(
    num_leaves: usize,
    objective: &mut O,
) -> Result<(Topology, GreedyStats), CtsError> {
    let mut scratch = GreedyScratch::new();
    run_greedy_exhaustive_with_scratch(
        num_leaves,
        objective,
        &GreedyParams::default(),
        &mut scratch,
    )
    .map(|(topology, stats, _)| (topology, stats))
}

/// The exhaustive engine with explicit [`GreedyParams`] and a caller-owned
/// [`GreedyScratch`], returning the per-phase [`GreedyProfile`].
///
/// # Errors
///
/// As [`run_greedy`].
///
/// # Panics
///
/// As [`run_greedy_with_scratch`].
pub fn run_greedy_exhaustive_with_scratch<O: MergeObjective>(
    num_leaves: usize,
    objective: &mut O,
    params: &GreedyParams,
    scratch: &mut GreedyScratch,
) -> Result<(Topology, GreedyStats, GreedyProfile), CtsError> {
    run_greedy_exhaustive_with_scratch_traced(
        num_leaves,
        objective,
        params,
        scratch,
        &Tracer::disabled(),
    )
}

/// [`run_greedy_exhaustive_with_scratch`] reporting phase spans and
/// counters through `tracer` (outer span `greedy.exhaustive`, phases
/// `greedy.seed` / `greedy.loop`).
///
/// # Errors
///
/// As [`run_greedy`].
///
/// # Panics
///
/// As [`run_greedy_with_scratch`].
#[expect(
    clippy::expect_used,
    reason = "the heap holds a candidate for every live pair until one root remains"
)]
pub fn run_greedy_exhaustive_with_scratch_traced<O: MergeObjective>(
    num_leaves: usize,
    objective: &mut O,
    params: &GreedyParams,
    scratch: &mut GreedyScratch,
    tracer: &Tracer,
) -> Result<(Topology, GreedyStats, GreedyProfile), CtsError> {
    let mut stats = GreedyStats::default();
    let mut profile = GreedyProfile::default();
    if num_leaves == 0 {
        return Err(CtsError::NoSinks);
    }
    if num_leaves == 1 {
        return Ok((Topology::single_sink()?, stats, profile));
    }

    let _run = tracer.span("greedy.exhaustive");
    let seed_span_start = tracer.now_ns();
    let seed_start = Instant::now();
    let seed_allocs0 = alloc_count();
    let threads = resolve_threads(params, tracer);
    // Checked before any storage is sized: past this limit the packed
    // heap tags and the u32 arena/tree columns would silently truncate
    // node indices, so the only safe answer is an error up front.
    let total = num_leaves.saturating_mul(2).saturating_sub(1);
    if total > NODE_INDEX_LIMIT {
        return Err(CtsError::CapacityExceeded {
            nodes: total,
            limit: NODE_INDEX_LIMIT,
        });
    }
    scratch.reset(total, num_leaves);
    let GreedyScratch {
        heap,
        alive,
        live,
        batch,
        entries,
        merges,
        decisions,
        ..
    } = scratch;

    // Initial candidate set: all leaf pairs, evaluated in parallel, then
    // heapified in one shot.
    for i in 0..num_leaves {
        for j in (i + 1)..num_leaves {
            batch.push((i as u32, j as u32));
        }
    }
    stats.exact_cost_evals += batch.len() as u64;
    evaluate_exact_pairs_into(&*objective, batch, threads, &mut heap.data);
    heap.rebuild();
    profile.seed_ms = seed_start.elapsed().as_secs_f64() * 1e3;
    profile.seed_allocs = alloc_count() - seed_allocs0;
    tracer.complete_span(
        "greedy.seed",
        seed_span_start,
        elapsed_ns(seed_start.elapsed()),
    );

    let loop_span_start = tracer.now_ns();
    let loop_start = Instant::now();
    let loop_allocs0 = alloc_count();
    let mut next = num_leaves;
    while next < total {
        let entry = heap.pop().expect("heap exhausted before root was formed");
        shadow::heap_monotone(heap, entry);
        stats.heap_pops += 1;
        let (a, b) = (entry.a() as usize, entry.b() as usize);
        if !alive[a] || !alive[b] {
            continue; // lazy deletion
        }
        alive[a] = false;
        alive[b] = false;
        objective.merge(a, b, next)?;
        merges.push((a, b));
        if params.log_decisions {
            decisions.push(MergeDecision {
                a: entry.a(),
                b: entry.b(),
                node: next as u32,
                key_bits: entry.key.to_bits(),
            });
        }
        live.retain(|&n| alive[n as usize]);
        batch.clear();
        batch.extend(live.iter().map(|&n| (n, next as u32)));
        stats.exact_cost_evals += batch.len() as u64;
        entries.clear();
        evaluate_exact_pairs_into(&*objective, batch, threads, entries);
        for &e in &*entries {
            heap.push(e);
        }
        alive[next] = true;
        live.push(next as u32);
        next += 1;
    }
    profile.loop_ms = loop_start.elapsed().as_secs_f64() * 1e3;
    profile.loop_allocs = alloc_count() - loop_allocs0;
    if tracer.enabled() {
        tracer.complete_span(
            "greedy.loop",
            loop_span_start,
            elapsed_ns(loop_start.elapsed()),
        );
        emit_greedy_counters(tracer, &stats, &profile);
    }

    Ok((Topology::from_merges(num_leaves, merges)?, stats, profile))
}

/// `ExhaustiveCheck` debug mode: runs **both** engines on clones of the
/// same objective and asserts the topologies are bit-identical before
/// returning the pruned result. Meant for tests and debugging sessions —
/// it deliberately pays the exhaustive engine's full cost.
///
/// # Errors
///
/// As [`run_greedy`].
///
/// # Panics
///
/// Panics when the pruned topology differs from the exhaustive one, i.e.
/// when an objective violates the admissibility contract.
pub fn run_greedy_checked<O: MergeObjective + Clone>(
    num_leaves: usize,
    objective: &mut O,
) -> Result<Topology, CtsError> {
    run_greedy_checked_logged(num_leaves, objective).map(|(topology, _)| topology)
}

/// [`run_greedy_checked`] returning the pruned run's decision log after
/// additionally asserting it is **bit-identical** to the exhaustive
/// engine's — same merge order, same partners, same winning keys down to
/// the `f64` bits, a strictly stronger check than topology equality. The
/// log feeds the `determinism` verifier pass and the per-merge scoped
/// verification in `gcr-verify` (which owns the tree-level replay, since
/// the verifier depends on this crate and not vice versa).
///
/// # Errors
///
/// As [`run_greedy`].
///
/// # Panics
///
/// As [`run_greedy_checked`], plus a decision-log mismatch.
pub fn run_greedy_checked_logged<O: MergeObjective + Clone>(
    num_leaves: usize,
    objective: &mut O,
) -> Result<(Topology, Vec<MergeDecision>), CtsError> {
    let params = GreedyParams {
        log_decisions: true,
        ..GreedyParams::default()
    };
    let mut reference = objective.clone();
    let mut scratch = GreedyScratch::new();
    let (expected, _, _) =
        run_greedy_exhaustive_with_scratch(num_leaves, &mut reference, &params, &mut scratch)?;
    let expected_log = scratch.take_decisions();
    let (topology, _, _) = run_greedy_with_scratch(num_leaves, objective, &params, &mut scratch)?;
    let log = scratch.take_decisions();
    assert_eq!(
        topology, expected,
        "pruned greedy diverged from the exhaustive engine: inadmissible bound?"
    );
    assert_eq!(
        canonical_decision_log(&log),
        canonical_decision_log(&expected_log),
        "pruned and exhaustive topologies agree but the decision logs differ"
    );
    Ok((topology, log))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Objective over plain points: cost = Manhattan distance; a merge
    /// creates the midpoint. The distance *is* its own admissible bound.
    #[derive(Clone)]
    struct PointObjective {
        points: Vec<Point>,
    }

    impl MergeObjective for PointObjective {
        fn cost(&self, a: usize, b: usize) -> f64 {
            self.points[a].manhattan(self.points[b])
        }
        fn cost_lower_bound(&self, a: usize, b: usize) -> f64 {
            self.cost(a, b)
        }
        fn cost_lower_bound_at_distance(&self, _node: usize, dist: f64) -> f64 {
            dist
        }
        fn location(&self, node: usize) -> Point {
            self.points[node]
        }
        fn merge(&mut self, a: usize, b: usize, k: usize) -> Result<(), CtsError> {
            assert_eq!(k, self.points.len());
            let mid = self.points[a].midpoint(self.points[b]);
            self.points.push(mid);
            Ok(())
        }
    }

    #[test]
    fn merges_closest_pairs_first() {
        // Two tight clusters far apart: the first two merges must be
        // intra-cluster.
        let mut obj = PointObjective {
            points: vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(100.0, 0.0),
                Point::new(101.0, 0.0),
            ],
        };
        let topo = run_greedy(4, &mut obj).unwrap();
        // Nodes 4 and 5 are the cluster merges; the root merges them.
        assert_eq!(
            topo.node(4),
            crate::TopoNode::Internal { left: 0, right: 1 }
        );
        assert_eq!(
            topo.node(5),
            crate::TopoNode::Internal { left: 2, right: 3 }
        );
        assert_eq!(
            topo.node(6),
            crate::TopoNode::Internal { left: 4, right: 5 }
        );
    }

    #[test]
    fn produces_valid_topology_for_various_sizes() {
        for n in [1usize, 2, 3, 7, 16, 33] {
            let mut obj = PointObjective {
                points: (0..n)
                    .map(|i| Point::new((i * 13 % 97) as f64, (i * 29 % 83) as f64))
                    .collect(),
            };
            let topo = run_greedy(n, &mut obj).unwrap();
            assert_eq!(topo.num_leaves(), n);
            assert_eq!(topo.len(), 2 * n - 1);
            assert_eq!(topo.subtree_sizes()[topo.root()], n);
        }
    }

    #[test]
    fn zero_sinks_is_an_error() {
        let mut obj = PointObjective { points: vec![] };
        assert_eq!(run_greedy(0, &mut obj).unwrap_err(), CtsError::NoSinks);
        let mut obj = PointObjective { points: vec![] };
        assert_eq!(
            run_greedy_exhaustive(0, &mut obj).unwrap_err(),
            CtsError::NoSinks
        );
    }

    #[test]
    fn oversized_designs_error_before_any_work() {
        // Past the 31-bit node budget both engines must refuse up front;
        // the check runs before the objective is ever consulted, so an
        // empty point store is fine.
        let n = (1usize << 30) + 1;
        let expected = CtsError::CapacityExceeded {
            nodes: 2 * n - 1,
            limit: NODE_INDEX_LIMIT,
        };
        let mut obj = PointObjective { points: vec![] };
        assert_eq!(run_greedy(n, &mut obj).unwrap_err(), expected);
        let mut obj = PointObjective { points: vec![] };
        assert_eq!(run_greedy_exhaustive(n, &mut obj).unwrap_err(), expected);
    }

    #[test]
    fn deterministic_under_ties() {
        // Four corners of a square: all intra-side distances tie; the
        // tie-break on indices must make runs reproducible.
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
        ];
        let run = || {
            let mut obj = PointObjective {
                points: points.clone(),
            };
            run_greedy(4, &mut obj).unwrap()
        };
        assert_eq!(run(), run());
    }

    /// The parallel batch path (> `PARALLEL_THRESHOLD` initial pairs) must
    /// produce the same topology run to run — determinism is independent
    /// of threading.
    #[test]
    fn parallel_path_is_deterministic() {
        // 128 leaves -> 8128 initial pairs > PARALLEL_THRESHOLD.
        let points: Vec<Point> = (0..128)
            .map(|i| Point::new(f64::from(i * 37 % 997), f64::from(i * 71 % 983)))
            .collect();
        let run = |threads: Option<usize>| {
            let mut obj = PointObjective {
                points: points.clone(),
            };
            let mut scratch = GreedyScratch::new();
            let params = GreedyParams {
                threads,
                ..GreedyParams::default()
            };
            run_greedy_exhaustive_with_scratch(128, &mut obj, &params, &mut scratch)
                .unwrap()
                .0
        };
        assert_eq!(run(None), run(None));
        // Any explicit thread count commits the same merges.
        assert_eq!(run(None), run(Some(1)));
        assert_eq!(run(Some(1)), run(Some(7)));
    }

    /// The pruned engine must commit the exact same merges as the
    /// exhaustive engine — including on highly degenerate (tied, collinear,
    /// coincident) inputs.
    #[test]
    fn pruned_matches_exhaustive_on_assorted_layouts() {
        let layouts: Vec<Vec<Point>> = vec![
            // Pseudo-random scatter.
            (0..97)
                .map(|i| Point::new(f64::from(i * 131 % 1009), f64::from(i * 197 % 977)))
                .collect(),
            // Degenerate: everything on one horizontal line.
            (0..40)
                .map(|i| Point::new(f64::from(i * i % 211), 0.0))
                .collect(),
            // Degenerate: many coincident points.
            (0..24).map(|i| Point::new(f64::from(i % 3), 0.0)).collect(),
            // Tiny instances.
            vec![Point::new(3.0, 4.0), Point::new(5.0, 6.0)],
            vec![Point::ORIGIN; 2],
        ];
        for points in layouts {
            let n = points.len();
            let mut pruned_obj = PointObjective {
                points: points.clone(),
            };
            let mut exhaustive_obj = PointObjective { points };
            let (pruned, stats) = run_greedy_instrumented(n, &mut pruned_obj).unwrap();
            let (exhaustive, ref_stats) =
                run_greedy_exhaustive_instrumented(n, &mut exhaustive_obj).unwrap();
            assert_eq!(pruned, exhaustive, "n = {n}");
            assert!(
                stats.exact_cost_evals <= ref_stats.exact_cost_evals,
                "pruning must not evaluate more exact costs: {stats:?} vs {ref_stats:?}"
            );
        }
    }

    /// On a large scattered instance the pruned engine must do far fewer
    /// exact evaluations — here at least 5x fewer.
    #[test]
    fn pruning_cuts_exact_evaluations() {
        let points: Vec<Point> = (0..300)
            .map(|i| Point::new(f64::from(i * 131 % 10_007), f64::from(i * 197 % 9_973)))
            .collect();
        let mut pruned_obj = PointObjective {
            points: points.clone(),
        };
        let mut exhaustive_obj = PointObjective { points };
        let (pruned, stats) = run_greedy_instrumented(300, &mut pruned_obj).unwrap();
        let (exhaustive, ref_stats) =
            run_greedy_exhaustive_instrumented(300, &mut exhaustive_obj).unwrap();
        assert_eq!(pruned, exhaustive);
        assert!(
            stats.exact_cost_evals * 5 <= ref_stats.exact_cost_evals,
            "expected >=5x fewer exact evals, got {} vs {}",
            stats.exact_cost_evals,
            ref_stats.exact_cost_evals
        );
        assert!(stats.ring_expansions > 0);
    }

    #[test]
    fn checked_mode_validates_equivalence() {
        let mut obj = PointObjective {
            points: (0..50)
                .map(|i| Point::new(f64::from(i * 37 % 199), f64::from(i * 53 % 211)))
                .collect(),
        };
        let topo = run_greedy_checked(50, &mut obj).unwrap();
        assert_eq!(topo.num_leaves(), 50);
    }

    /// The decision log records exactly the committed merges, in order,
    /// canonically oriented, and bit-identically across both engines.
    #[test]
    fn decision_log_is_canonical_and_engine_independent() {
        let obj = PointObjective {
            points: (0..40)
                .map(|i| Point::new(f64::from(i * 37 % 199), f64::from(i * 53 % 211)))
                .collect(),
        };
        let params = GreedyParams {
            log_decisions: true,
            ..GreedyParams::default()
        };
        let mut scratch = GreedyScratch::new();
        let mut pruned_obj = obj.clone();
        let (topo, _, _) =
            run_greedy_with_scratch(40, &mut pruned_obj, &params, &mut scratch).unwrap();
        let pruned_log = scratch.take_decisions();
        let mut exhaustive_obj = obj.clone();
        let (_, _, _) =
            run_greedy_exhaustive_with_scratch(40, &mut exhaustive_obj, &params, &mut scratch)
                .unwrap();
        let exhaustive_log = scratch.take_decisions();

        assert_eq!(pruned_log.len(), 39, "one record per committed merge");
        for (i, d) in pruned_log.iter().enumerate() {
            assert_eq!(d.node as usize, 40 + i, "nodes are created in order");
            assert!(d.a < d.b, "partners are canonically oriented");
            assert!(d.b < d.node, "partners precede the node they form");
            assert!(d.key().is_finite());
        }
        assert_eq!(
            pruned_log, exhaustive_log,
            "decision logs are bit-identical"
        );
        let text = canonical_decision_log(&pruned_log);
        assert_eq!(text.lines().count(), 39);
        assert!(text.starts_with("merge v40 <- "), "{text}");
        assert_eq!(topo.num_leaves(), 40);
    }

    /// Without the flag the log stays empty — no branch taken, nothing
    /// recorded, identical committed merges.
    #[test]
    fn decision_log_is_off_by_default() {
        let mut obj = PointObjective {
            points: (0..20)
                .map(|i| Point::new(f64::from(i * 13 % 71), f64::from(i * 29 % 83)))
                .collect(),
        };
        let mut scratch = GreedyScratch::new();
        let (_, _, _) =
            run_greedy_with_scratch(20, &mut obj, &GreedyParams::default(), &mut scratch).unwrap();
        assert!(scratch.decisions().is_empty());
    }

    /// `run_greedy_checked_logged` returns the log the plain flag-driven
    /// run would have produced.
    #[test]
    fn checked_logged_returns_the_pruned_log() {
        let mut obj = PointObjective {
            points: (0..24)
                .map(|i| Point::new(f64::from(i * 41 % 113), f64::from(i * 59 % 127)))
                .collect(),
        };
        let (topo, log) = run_greedy_checked_logged(24, &mut obj).unwrap();
        assert_eq!(topo.num_leaves(), 24);
        assert_eq!(log.len(), 23);
    }

    /// With the feature on, a clean objective sails through every shadow
    /// hook; an objective with an inadmissible bound trips the online
    /// bound-slack check *during* the run, before the checked-mode
    /// topology diff would see it.
    #[cfg(feature = "shadow-invariants")]
    mod shadow_feature {
        use super::*;

        #[test]
        fn clean_run_passes_all_shadow_hooks() {
            let mut obj = PointObjective {
                points: (0..60)
                    .map(|i| Point::new(f64::from(i * 37 % 199), f64::from(i * 53 % 211)))
                    .collect(),
            };
            let topo = run_greedy(60, &mut obj).unwrap();
            assert_eq!(topo.num_leaves(), 60);
        }

        #[test]
        #[should_panic(expected = "shadow-invariants")]
        fn inadmissible_bound_trips_the_online_slack_check() {
            #[derive(Clone)]
            struct Lying(PointObjective);
            impl MergeObjective for Lying {
                fn cost(&self, a: usize, b: usize) -> f64 {
                    self.0.cost(a, b)
                }
                fn cost_lower_bound(&self, a: usize, b: usize) -> f64 {
                    self.0.cost(a, b) + 1.0 // overshoots every exact cost
                }
                fn cost_lower_bound_at_distance(&self, _node: usize, dist: f64) -> f64 {
                    dist
                }
                fn location(&self, node: usize) -> Point {
                    self.0.location(node)
                }
                fn merge(&mut self, a: usize, b: usize, k: usize) -> Result<(), CtsError> {
                    self.0.merge(a, b, k)
                }
            }
            let mut obj = Lying(PointObjective {
                points: (0..12)
                    .map(|i| Point::new(f64::from(i * 31 % 89), f64::from(i * 17 % 97)))
                    .collect(),
            });
            let _ = run_greedy(12, &mut obj);
        }
    }

    /// An inadmissible bound must be caught by the checked mode (or, with
    /// `shadow-invariants` on, by the online slack check even earlier —
    /// both panics name the inadmissible bound).
    #[test]
    #[should_panic(expected = "inadmissible")]
    fn checked_mode_catches_inadmissible_bounds() {
        #[derive(Clone)]
        struct Lying(PointObjective);
        impl MergeObjective for Lying {
            fn cost(&self, a: usize, b: usize) -> f64 {
                self.0.cost(a, b)
            }
            fn cost_lower_bound(&self, a: usize, b: usize) -> f64 {
                // Inverts the ordering: near pairs get huge "bounds".
                1e9 - self.0.cost(a, b)
            }
            fn cost_lower_bound_at_distance(&self, _node: usize, _dist: f64) -> f64 {
                1e9
            }
            fn location(&self, node: usize) -> Point {
                self.0.location(node)
            }
            fn merge(&mut self, a: usize, b: usize, k: usize) -> Result<(), CtsError> {
                self.0.merge(a, b, k)
            }
        }
        let mut obj = Lying(PointObjective {
            points: (0..12)
                .map(|i| Point::new(f64::from(i * 31 % 89), f64::from(i * 17 % 97)))
                .collect(),
        });
        let _ = run_greedy_checked(12, &mut obj);
    }

    /// The packed tag must order exactly like the `(kind, a, b)` triple.
    #[test]
    fn packed_tag_roundtrips_and_orders_lexicographically() {
        let samples = [
            (KIND_EXPAND, 0u32, 0u32),
            (KIND_EXPAND, 0, 1),
            (KIND_EXPAND, 7, 2),
            (KIND_DEFER, 0, 0),
            (KIND_DEFER, 3, 9),
            (KIND_BOUND, 0, 0),
            (KIND_BOUND, 0, (1 << 31) - 1),
            (KIND_BOUND, 1, 0),
            (KIND_EXACT, 0, 5),
            (KIND_EXACT, (1 << 31) - 1, (1 << 31) - 1),
        ];
        for &(kind, a, b) in &samples {
            let e = Entry::new(1.5, kind, a, b);
            assert_eq!((e.kind(), e.a(), e.b()), (kind, a, b));
        }
        // The sample list above is in (kind, a, b) lexicographic order.
        for pair in samples.windows(2) {
            let lo = Entry::new(0.0, pair[0].0, pair[0].1, pair[0].2);
            let hi = Entry::new(0.0, pair[1].0, pair[1].1, pair[1].2);
            assert!(lo.tag < hi.tag, "{pair:?}");
            assert!(lo.precedes(hi) && !hi.precedes(lo));
        }
    }

    #[test]
    fn entry_ordering_is_min_first_with_kind_tiebreak() {
        let mut h = MinHeap::default();
        h.push(Entry::new(5.0, KIND_EXACT, 0, 1));
        h.push(Entry::new(1.0, KIND_EXACT, 2, 3));
        h.push(Entry::new(1.0, KIND_BOUND, 4, 5));
        h.push(Entry::new(1.0, KIND_DEFER, 5, 0));
        h.push(Entry::new(1.0, KIND_EXPAND, 6, 2));
        // Equal keys: expansion, then deferred, then bound, then exact —
        // every non-exact kind resolves before a commit at the same key.
        assert_eq!(h.pop().unwrap().kind(), KIND_EXPAND);
        assert_eq!(h.pop().unwrap().kind(), KIND_DEFER);
        assert_eq!(h.pop().unwrap().kind(), KIND_BOUND);
        assert_eq!(h.pop().unwrap().kind(), KIND_EXACT);
        assert_eq!(h.pop().unwrap().key, 5.0);
        assert_eq!(h.pop(), None);
    }

    /// Pushing in scrambled order must pop in the strict total order, and
    /// `rebuild` must agree with incremental pushes.
    #[test]
    fn minheap_pops_in_total_order() {
        let keys = [
            3.25, -1.0, 0.0, -0.0, 7.5, 3.25, 2.0, 100.0, -55.5, 0.5, 3.25, 2.0,
        ];
        let mut pushed = MinHeap::default();
        let mut bulk = MinHeap::default();
        for (i, &k) in keys.iter().enumerate() {
            let e = Entry::new(k, KIND_BOUND, i as u32, (i * 2 + 1) as u32);
            pushed.push(e);
            bulk.data.push(e);
        }
        bulk.rebuild();
        let mut prev: Option<Entry> = None;
        for _ in 0..keys.len() {
            let a = pushed.pop().unwrap();
            let b = bulk.pop().unwrap();
            assert_eq!(a, b);
            if let Some(p) = prev {
                assert!(p.precedes(a), "{p:?} must precede {a:?}");
            }
            prev = Some(a);
        }
        assert_eq!(pushed.pop(), None);
        assert_eq!(bulk.pop(), None);
    }

    /// Compaction must drop exactly the dead entries and preserve the pop
    /// order of the survivors.
    #[test]
    fn retain_live_preserves_survivor_order() {
        let mut alive = vec![true; 10];
        alive[3] = false;
        alive[7] = false;
        let mut full = MinHeap::default();
        for a in 0..10u32 {
            for b in (a + 1)..10u32 {
                full.push(Entry::new(
                    f64::from((a * 7 + b * 13) % 11),
                    KIND_BOUND,
                    a,
                    b,
                ));
            }
            full.push(Entry::new(f64::from(a % 3), KIND_EXPAND, a, 2));
            // Deferred entries are live iff their center is — `b` is a slab
            // row index, not a node, and must not affect liveness.
            full.push(Entry::new(f64::from(a % 5), KIND_DEFER, a, 3));
        }
        let mut compacted = full.clone();
        compacted.retain_live(&alive);
        assert!(compacted.len() < full.len());
        // Popping the full heap and skipping dead entries must equal
        // popping the compacted heap.
        loop {
            let want = loop {
                match full.pop() {
                    Some(e) if e.is_live(&alive) => break Some(e),
                    Some(_) => {}
                    None => break None,
                }
            };
            let got = compacted.pop();
            assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }

    /// A scratch reused across runs (including runs of different sizes)
    /// must not change results.
    #[test]
    fn scratch_reuse_is_deterministic() {
        let mut scratch = GreedyScratch::new();
        let params = GreedyParams::default();
        let mut last = None;
        for n in [33usize, 8, 33] {
            let mut obj = PointObjective {
                points: (0..n)
                    .map(|i| Point::new((i * 13 % 97) as f64, (i * 29 % 83) as f64))
                    .collect(),
            };
            let (topo, _, _) = run_greedy_with_scratch(n, &mut obj, &params, &mut scratch).unwrap();
            assert_eq!(topo.num_leaves(), n);
            let mut fresh_obj = PointObjective {
                points: (0..n)
                    .map(|i| Point::new((i * 13 % 97) as f64, (i * 29 % 83) as f64))
                    .collect(),
            };
            let fresh = run_greedy(n, &mut fresh_obj).unwrap();
            assert_eq!(topo, fresh, "n = {n}");
            if n == 33 {
                if let Some(prev) = last.take() {
                    assert_eq!(topo, prev);
                }
                last = Some(topo);
            }
        }
    }

    /// Explicit thread counts resolve as given (clamped); the default
    /// resolves to at least one worker.
    #[test]
    fn thread_resolution_clamps() {
        let tracer = Tracer::disabled();
        assert_eq!(
            resolve_threads(
                &GreedyParams {
                    threads: Some(7),
                    ..GreedyParams::default()
                },
                &tracer
            ),
            7
        );
        assert_eq!(
            resolve_threads(
                &GreedyParams {
                    threads: Some(0),
                    ..GreedyParams::default()
                },
                &tracer
            ),
            1
        );
        assert_eq!(
            resolve_threads(
                &GreedyParams {
                    threads: Some(999),
                    ..GreedyParams::default()
                },
                &tracer
            ),
            gcr_trace::threads::MAX_THREADS
        );
        assert!(resolve_threads(&GreedyParams::default(), &tracer) >= 1);
    }

    /// A pruned run under an active memory sink commits the same topology
    /// as an untraced run, reports balanced greedy spans with the four
    /// loop sub-phases, and mirrors the [`GreedyStats`] counters.
    #[test]
    fn traced_run_is_identical_and_reports_phases() {
        use gcr_trace::{MemorySink, TraceEvent};
        use std::sync::Arc;

        let points: Vec<Point> = (0..60)
            .map(|i| Point::new(f64::from(i * 37 % 101), f64::from(i * 53 % 89)))
            .collect();
        let mut plain_obj = PointObjective {
            points: points.clone(),
        };
        let (plain, plain_stats) = run_greedy_instrumented(60, &mut plain_obj).unwrap();

        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::new(sink.clone());
        let mut traced_obj = PointObjective { points };
        let traced = run_greedy_traced(60, &mut traced_obj, &tracer).unwrap();
        assert_eq!(traced, plain, "tracing must not influence the search");

        let nesting = sink.nesting().unwrap();
        assert_eq!(nesting[0], ("greedy.run", 0));
        for phase in [
            "greedy.seed",
            "greedy.loop",
            "greedy.ring",
            "greedy.defer",
            "greedy.bound",
            "greedy.merge",
        ] {
            assert!(
                nesting
                    .iter()
                    .any(|&(name, depth)| name == phase && depth == 1),
                "missing sub-phase {phase} in {nesting:?}"
            );
        }
        assert_eq!(
            sink.counter("greedy.exact_cost_evals"),
            Some(plain_stats.exact_cost_evals as f64)
        );
        assert_eq!(
            sink.counter("greedy.heap_pops"),
            Some(plain_stats.heap_pops as f64)
        );
        // The four sub-phase intervals partition the loop span.
        let events = sink.events();
        let loop_ns = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Complete { name, dur_ns, .. } if *name == "greedy.loop" => {
                    Some(*dur_ns)
                }
                _ => None,
            })
            .unwrap();
        let sub_ns: u64 = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Complete { name, dur_ns, .. }
                    if [
                        "greedy.ring",
                        "greedy.defer",
                        "greedy.bound",
                        "greedy.merge",
                    ]
                    .contains(name) =>
                {
                    Some(*dur_ns)
                }
                _ => None,
            })
            .sum();
        assert!(
            sub_ns <= loop_ns,
            "sub-phases ({sub_ns} ns) exceed the loop ({loop_ns} ns)"
        );
    }
}
