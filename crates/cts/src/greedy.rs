use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{CtsError, Topology};

/// The pluggable cost model of the bottom-up greedy merger.
///
/// The engine owns the *control flow* of the paper's `GatedClockRouting`
/// loop ("pick the pair whose SC is minimum … until only the root is
/// left"); the objective owns the *state*: subtree electrical summaries,
/// activity statistics, whatever the cost needs. Implementations:
///
/// * [`NearestNeighborObjective`](crate::NearestNeighborObjective) — cost =
///   geometric distance between merging regions (Edahiro \[3\], the paper's
///   buffered baseline);
/// * the Equation-3 switched-capacitance objective in `gcr-core` (the
///   paper's contribution).
///
/// `cost` takes `&self` (and the trait requires [`Sync`]) so the engine can
/// evaluate candidate batches on multiple threads; all mutation happens in
/// `merge`.
pub trait MergeObjective: Sync {
    /// Cost of merging the live subtrees rooted at topology nodes `a` and
    /// `b`. Must depend only on the states of `a` and `b` (both immutable
    /// once created) so that heap entries never go stale.
    fn cost(&self, a: usize, b: usize) -> f64;

    /// Commit the merge of `a` and `b` into the new topology node `k`
    /// (`k` is always the next unused index). The objective must create
    /// and cache whatever state node `k` needs for future cost queries.
    fn merge(&mut self, a: usize, b: usize, k: usize);
}

/// A candidate pair in the lazy-deletion min-heap.
#[derive(Debug, PartialEq)]
struct Candidate {
    cost: f64,
    a: u32,
    b: u32,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the cheapest pair on
        // top. Tie-break on indices for determinism.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.a.cmp(&self.a))
            .then_with(|| other.b.cmp(&self.b))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Candidate batches below this size are evaluated on the calling thread.
const PARALLEL_THRESHOLD: usize = 4_096;

/// Evaluates `cost` for every pair, fanning out across threads for large
/// batches. Deterministic: per-pair results do not depend on evaluation
/// order, and the heap tie-breaks on indices.
#[expect(
    clippy::expect_used,
    reason = "a panicking cost worker must propagate, not be swallowed"
)]
fn evaluate_costs<O: MergeObjective>(objective: &O, pairs: &[(u32, u32)]) -> Vec<Candidate> {
    let eval = |&(a, b): &(u32, u32)| {
        let cost = objective.cost(a as usize, b as usize);
        assert!(!cost.is_nan(), "merge cost of ({a}, {b}) is NaN");
        Candidate { cost, a, b }
    };
    if pairs.len() < PARALLEL_THRESHOLD {
        return pairs.iter().map(eval).collect();
    }
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(16);
    if threads == 1 {
        return pairs.iter().map(eval).collect();
    }
    let chunk = pairs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|slice| scope.spawn(move || slice.iter().map(eval).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("cost worker panicked"))
            .collect()
    })
}

/// Runs the paper's greedy bottom-up merge loop: repeatedly merge the live
/// pair of minimum cost until a single root remains, returning the
/// resulting [`Topology`].
///
/// Candidate pairs live in a lazy-deletion binary heap; because a pair's
/// cost depends only on its two endpoint states (immutable once created),
/// popped entries are either exact or reference dead nodes — never stale.
/// Total work is `O(N² log N)` heap traffic plus one `cost` evaluation per
/// candidate, matching the complexity budget of §4.2; large candidate
/// batches (the initial N²/2 pairs and each merge's survivor sweep) are
/// evaluated on all available cores.
///
/// # Errors
///
/// Returns [`CtsError::NoSinks`] when `num_leaves == 0`.
///
/// # Panics
///
/// Panics if the objective returns a NaN cost.
#[expect(
    clippy::expect_used,
    reason = "the heap holds a candidate for every live pair until one root remains"
)]
pub fn run_greedy<O: MergeObjective>(
    num_leaves: usize,
    objective: &mut O,
) -> Result<Topology, CtsError> {
    if num_leaves == 0 {
        return Err(CtsError::NoSinks);
    }
    if num_leaves == 1 {
        return Topology::single_sink();
    }

    let total = 2 * num_leaves - 1;
    let mut alive = vec![false; total];
    let mut live: Vec<usize> = (0..num_leaves).collect();
    for &i in &live {
        alive[i] = true;
    }

    // Initial candidate set: all leaf pairs, evaluated in parallel, then
    // heapified in one shot.
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(num_leaves * (num_leaves - 1) / 2);
    for i in 0..live.len() {
        for j in (i + 1)..live.len() {
            pairs.push((live[i] as u32, live[j] as u32));
        }
    }
    let mut heap = BinaryHeap::from(evaluate_costs(&*objective, &pairs));
    drop(pairs);

    let mut merges = Vec::with_capacity(num_leaves - 1);
    let mut next = num_leaves;
    let mut batch: Vec<(u32, u32)> = Vec::with_capacity(num_leaves);
    while next < total {
        let Candidate { a, b, .. } = heap.pop().expect("heap exhausted before root was formed");
        let (a, b) = (a as usize, b as usize);
        if !alive[a] || !alive[b] {
            continue; // lazy deletion
        }
        alive[a] = false;
        alive[b] = false;
        objective.merge(a, b, next);
        merges.push((a, b));
        live.retain(|&n| alive[n]);
        batch.clear();
        batch.extend(live.iter().map(|&n| (n as u32, next as u32)));
        for cand in evaluate_costs(&*objective, &batch) {
            heap.push(cand);
        }
        alive[next] = true;
        live.push(next);
        next += 1;
    }

    Topology::from_merges(num_leaves, &merges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_geometry::Point;

    /// Objective over plain points: cost = Manhattan distance; a merge
    /// creates the midpoint.
    struct PointObjective {
        points: Vec<Point>,
    }

    impl MergeObjective for PointObjective {
        fn cost(&self, a: usize, b: usize) -> f64 {
            self.points[a].manhattan(self.points[b])
        }
        fn merge(&mut self, a: usize, b: usize, k: usize) {
            assert_eq!(k, self.points.len());
            let mid = self.points[a].midpoint(self.points[b]);
            self.points.push(mid);
        }
    }

    #[test]
    fn merges_closest_pairs_first() {
        // Two tight clusters far apart: the first two merges must be
        // intra-cluster.
        let mut obj = PointObjective {
            points: vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(100.0, 0.0),
                Point::new(101.0, 0.0),
            ],
        };
        let topo = run_greedy(4, &mut obj).unwrap();
        // Nodes 4 and 5 are the cluster merges; the root merges them.
        assert_eq!(
            topo.node(4),
            crate::TopoNode::Internal { left: 0, right: 1 }
        );
        assert_eq!(
            topo.node(5),
            crate::TopoNode::Internal { left: 2, right: 3 }
        );
        assert_eq!(
            topo.node(6),
            crate::TopoNode::Internal { left: 4, right: 5 }
        );
    }

    #[test]
    fn produces_valid_topology_for_various_sizes() {
        for n in [1usize, 2, 3, 7, 16, 33] {
            let mut obj = PointObjective {
                points: (0..n)
                    .map(|i| Point::new((i * 13 % 97) as f64, (i * 29 % 83) as f64))
                    .collect(),
            };
            let topo = run_greedy(n, &mut obj).unwrap();
            assert_eq!(topo.num_leaves(), n);
            assert_eq!(topo.len(), 2 * n - 1);
            assert_eq!(topo.subtree_sizes()[topo.root()], n);
        }
    }

    #[test]
    fn zero_sinks_is_an_error() {
        let mut obj = PointObjective { points: vec![] };
        assert_eq!(run_greedy(0, &mut obj).unwrap_err(), CtsError::NoSinks);
    }

    #[test]
    fn deterministic_under_ties() {
        // Four corners of a square: all intra-side distances tie; the
        // tie-break on indices must make runs reproducible.
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
        ];
        let run = || {
            let mut obj = PointObjective {
                points: points.clone(),
            };
            run_greedy(4, &mut obj).unwrap()
        };
        assert_eq!(run(), run());
    }

    /// The parallel batch path (> `PARALLEL_THRESHOLD` initial pairs) must
    /// produce the same topology run to run — determinism is independent
    /// of threading.
    #[test]
    fn parallel_path_is_deterministic() {
        // 128 leaves -> 8128 initial pairs > PARALLEL_THRESHOLD.
        let points: Vec<Point> = (0..128)
            .map(|i| Point::new(f64::from(i * 37 % 997), f64::from(i * 71 % 983)))
            .collect();
        let run = || {
            let mut obj = PointObjective {
                points: points.clone(),
            };
            run_greedy(128, &mut obj).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn candidate_ordering_is_min_first() {
        let mut h = BinaryHeap::new();
        h.push(Candidate {
            cost: 5.0,
            a: 0,
            b: 1,
        });
        h.push(Candidate {
            cost: 1.0,
            a: 2,
            b: 3,
        });
        h.push(Candidate {
            cost: 3.0,
            a: 4,
            b: 5,
        });
        assert_eq!(h.pop().unwrap().cost, 1.0);
        assert_eq!(h.pop().unwrap().cost, 3.0);
        assert_eq!(h.pop().unwrap().cost, 5.0);
    }
}
