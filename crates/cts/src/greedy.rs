use std::cmp::Ordering;
use std::collections::BinaryHeap;

use gcr_geometry::Point;

use crate::nearest::BucketGrid;
use crate::{CtsError, Topology};

/// The pluggable cost model of the bottom-up greedy merger.
///
/// The engine owns the *control flow* of the paper's `GatedClockRouting`
/// loop ("pick the pair whose SC is minimum … until only the root is
/// left"); the objective owns the *state*: subtree electrical summaries,
/// activity statistics, whatever the cost needs. Implementations:
///
/// * [`NearestNeighborObjective`](crate::NearestNeighborObjective) — cost =
///   geometric distance between merging regions (Edahiro \[3\], the paper's
///   buffered baseline);
/// * the Equation-3 switched-capacitance objective in `gcr-core` (the
///   paper's contribution).
///
/// `cost` and the bound methods take `&self` (and the trait requires
/// [`Sync`]) so the engine can evaluate candidate batches on multiple
/// threads; all mutation happens in `merge`.
///
/// # Exactness contract
///
/// The pruned engine ([`run_greedy`]) commits exactly the merges the
/// exhaustive engine ([`run_greedy_exhaustive`]) would, *provided* the
/// bound methods are **admissible**:
///
/// * `cost_lower_bound(a, b) <= cost(a, b)` for every live pair, and
/// * `cost_lower_bound_at_distance(x, dist) <= cost(x, y)` for every sink
///   leaf `y` whose location is at Manhattan distance `>= dist` from
///   `location(x)`.
///
/// An inadmissible bound does not corrupt the tree — every committed merge
/// still uses the exact `cost` — but the merge *order* can then diverge
/// from the exhaustive engine. [`run_greedy_checked`] asserts the
/// equivalence at runtime.
pub trait MergeObjective: Sync {
    /// Cost of merging the live subtrees rooted at topology nodes `a` and
    /// `b`. Must depend only on the states of `a` and `b` (both immutable
    /// once created) so that heap entries never go stale.
    fn cost(&self, a: usize, b: usize) -> f64;

    /// Cheap admissible lower bound on [`cost`](Self::cost) for the pair
    /// `(a, b)`: must never exceed the exact cost, and must be computable
    /// without a zero-skew merge (for Equation 3 this is the
    /// distance-driven wire-capacitance term plus the merge-independent
    /// static terms).
    fn cost_lower_bound(&self, a: usize, b: usize) -> f64;

    /// Admissible lower bound on `cost(node, y)` over every **sink leaf**
    /// `y` located at Manhattan distance at least `dist` from
    /// `location(node)`. Used to price the not-yet-generated bucket-grid
    /// rings of a leaf, so `node` is always a leaf when the engine calls
    /// this.
    fn cost_lower_bound_at_distance(&self, node: usize, dist: f64) -> f64;

    /// Representative location of `node` (the center of its merging
    /// region; for a leaf, the sink location). Leaf locations seed the
    /// candidate-generation bucket grid.
    fn location(&self, node: usize) -> Point;

    /// Commit the merge of `a` and `b` into the new topology node `k`
    /// (`k` is always the next unused index). The objective must create
    /// and cache whatever state node `k` needs for future cost queries.
    ///
    /// # Errors
    ///
    /// Implementations that run a zero-skew merge propagate its
    /// [`CtsError::MergeRegionDisjoint`] instead of panicking.
    fn merge(&mut self, a: usize, b: usize, k: usize) -> Result<(), CtsError>;
}

/// Instrumentation counters of one greedy run, exposed so benchmarks (and
/// the acceptance gate on pruning effectiveness) can compare engines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GreedyStats {
    /// Exact [`MergeObjective::cost`] evaluations (each runs a full
    /// zero-skew merge under the Equation-3 objective) — the number the
    /// pruned engine exists to minimize.
    pub exact_cost_evals: u64,
    /// Cheap [`MergeObjective::cost_lower_bound`] evaluations.
    pub bound_evals: u64,
    /// Bucket-grid expansion rings generated (0 for the exhaustive
    /// engine).
    pub ring_expansions: u64,
    /// Heap entries popped, including lazily-deleted dead ones.
    pub heap_pops: u64,
}

/// Heap-entry kinds, in tie-break order. At equal keys, ring expansions
/// and bound entries must resolve **before** any exact entry commits, so
/// that every pair whose true cost ties the minimum is present as an exact
/// entry when the winner is chosen — this is what makes the pruned
/// engine's tie-breaking identical to the exhaustive engine's.
const KIND_EXPAND: u8 = 0;
const KIND_BOUND: u8 = 1;
const KIND_EXACT: u8 = 2;

/// A prioritized work item in the lazy best-first heap.
///
/// * `KIND_EXPAND`: generate ring `b` of leaf `a`'s bucket-grid
///   neighborhood; `key` bounds the cost of every not-yet-generated pair
///   of `a`.
/// * `KIND_BOUND`: pair `(a, b)` with `key = cost_lower_bound(a, b)`.
/// * `KIND_EXACT`: pair `(a, b)` with `key = cost(a, b)`.
#[derive(Debug, PartialEq)]
struct Entry {
    key: f64,
    kind: u8,
    a: u32,
    b: u32,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest key on
        // top. Kind then indices break ties (see `KIND_EXPAND`).
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.kind.cmp(&self.kind))
            .then_with(|| other.a.cmp(&self.a))
            .then_with(|| other.b.cmp(&self.b))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Candidate batches below this size are evaluated on the calling thread.
const PARALLEL_THRESHOLD: usize = 4_096;

/// Grid rings generated per leaf before the first expansion entry takes
/// over (ring 0 is the leaf's own cell).
const INITIAL_RINGS: usize = 1;

/// Evaluates every pair — `cost` for `KIND_EXACT` entries,
/// `cost_lower_bound` for `KIND_BOUND` — fanning out across threads for
/// large batches. Deterministic: per-pair results do not depend on
/// evaluation order, and the heap tie-breaks on indices.
#[expect(
    clippy::expect_used,
    reason = "a panicking cost worker must propagate, not be swallowed"
)]
fn evaluate_pairs<O: MergeObjective>(objective: &O, pairs: &[(u32, u32)], kind: u8) -> Vec<Entry> {
    let eval = move |&(a, b): &(u32, u32)| {
        let key = if kind == KIND_EXACT {
            objective.cost(a as usize, b as usize)
        } else {
            objective.cost_lower_bound(a as usize, b as usize)
        };
        assert!(!key.is_nan(), "merge cost of ({a}, {b}) is NaN");
        Entry { key, kind, a, b }
    };
    if pairs.len() < PARALLEL_THRESHOLD {
        return pairs.iter().map(eval).collect();
    }
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(16);
    if threads == 1 {
        return pairs.iter().map(eval).collect();
    }
    let chunk = pairs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|slice| scope.spawn(move || slice.iter().map(eval).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("cost worker panicked"))
            .collect()
    })
}

/// Heap key of leaf `x`'s next expansion entry, which stands in for every
/// pair of `x` not yet generated: those partners live in grid rings
/// `>= ring`, hence at Manhattan distance `> (ring - 1) * cell` — an
/// admissible bound by the `cost_lower_bound_at_distance` contract.
/// `None` once every cell has been swept.
fn expansion_key<O: MergeObjective>(
    objective: &O,
    grid: &BucketGrid,
    x: usize,
    location: Point,
    ring: usize,
) -> Option<f64> {
    if ring > grid.max_ring(location) {
        return None;
    }
    let dist = grid.cell_size() * (ring - 1) as f64;
    let key = objective.cost_lower_bound_at_distance(x, dist);
    assert!(!key.is_nan(), "expansion bound of leaf {x} is NaN");
    Some(key)
}

/// Runs the paper's greedy bottom-up merge loop: repeatedly merge the live
/// pair of minimum cost until a single root remains, returning the
/// resulting [`Topology`].
///
/// This is the **pruned** engine: candidates start as cheap admissible
/// lower bounds generated from a bucket grid over the sink locations
/// (Edahiro \[3\]) in on-demand expansion rings, and the exact cost is
/// computed only when a bound surfaces at the top of the heap — i.e. only
/// when it is competitive with the best known exact cost. Best-first
/// search with admissible bounds commits exactly the merges of
/// [`run_greedy_exhaustive`], bit-identically (see
/// [`MergeObjective`]'s exactness contract), while evaluating a small
/// fraction of the exact costs.
///
/// # Errors
///
/// Returns [`CtsError::NoSinks`] when `num_leaves == 0` and propagates
/// [`CtsError::MergeRegionDisjoint`] from the objective's `merge`.
///
/// # Panics
///
/// Panics if the objective returns a NaN cost or bound.
pub fn run_greedy<O: MergeObjective>(
    num_leaves: usize,
    objective: &mut O,
) -> Result<Topology, CtsError> {
    run_greedy_instrumented(num_leaves, objective).map(|(topology, _)| topology)
}

/// [`run_greedy`] with its [`GreedyStats`] instrumentation.
///
/// # Errors
///
/// As [`run_greedy`].
#[expect(
    clippy::expect_used,
    reason = "every live pair is covered by a bound, exact, or expansion \
              entry until one root remains (see the coverage argument in \
              docs/algorithms.md §Candidate pruning)"
)]
pub fn run_greedy_instrumented<O: MergeObjective>(
    num_leaves: usize,
    objective: &mut O,
) -> Result<(Topology, GreedyStats), CtsError> {
    let mut stats = GreedyStats::default();
    if num_leaves == 0 {
        return Err(CtsError::NoSinks);
    }
    if num_leaves == 1 {
        return Ok((Topology::single_sink()?, stats));
    }

    let total = 2 * num_leaves - 1;
    let mut alive = vec![false; total];
    let mut live: Vec<usize> = (0..num_leaves).collect();
    for &i in &live {
        alive[i] = true;
    }

    let locations: Vec<Point> = (0..num_leaves).map(|i| objective.location(i)).collect();
    let grid = BucketGrid::build(&locations);

    // Seed: every leaf's nearby rings as bound entries (each pair once,
    // from its lower-index endpoint), plus one expansion entry per leaf
    // standing in for all farther partners.
    let mut entries: Vec<Entry> = Vec::new();
    let mut seed_pairs: Vec<(u32, u32)> = Vec::new();
    let mut members: Vec<u32> = Vec::new();
    for (x, &loc) in locations.iter().enumerate() {
        for ring in 0..=INITIAL_RINGS {
            grid.ring_members(loc, ring, &mut members);
            for &y in &members {
                if (y as usize) > x {
                    seed_pairs.push((x as u32, y));
                }
            }
        }
        if let Some(key) = expansion_key(&*objective, &grid, x, loc, INITIAL_RINGS + 1) {
            entries.push(Entry {
                key,
                kind: KIND_EXPAND,
                a: x as u32,
                b: (INITIAL_RINGS + 1) as u32,
            });
        }
    }
    stats.bound_evals += seed_pairs.len() as u64;
    entries.extend(evaluate_pairs(&*objective, &seed_pairs, KIND_BOUND));
    drop(seed_pairs);
    let mut heap = BinaryHeap::from(entries);

    let mut merges = Vec::with_capacity(num_leaves - 1);
    let mut next = num_leaves;
    let mut batch: Vec<(u32, u32)> = Vec::with_capacity(num_leaves);
    while next < total {
        let Entry { kind, a, b, .. } = heap.pop().expect("heap exhausted before root was formed");
        stats.heap_pops += 1;
        match kind {
            KIND_EXPAND => {
                let x = a as usize;
                if !alive[x] {
                    continue;
                }
                let ring = b as usize;
                stats.ring_expansions += 1;
                grid.ring_members(locations[x], ring, &mut members);
                for &y in &members {
                    let yi = y as usize;
                    if yi > x && alive[yi] {
                        let key = objective.cost_lower_bound(x, yi);
                        stats.bound_evals += 1;
                        assert!(!key.is_nan(), "merge bound of ({x}, {yi}) is NaN");
                        heap.push(Entry {
                            key,
                            kind: KIND_BOUND,
                            a,
                            b: y,
                        });
                    }
                }
                if let Some(key) = expansion_key(&*objective, &grid, x, locations[x], ring + 1) {
                    heap.push(Entry {
                        key,
                        kind: KIND_EXPAND,
                        a,
                        b: (ring + 1) as u32,
                    });
                }
            }
            KIND_BOUND => {
                let (x, y) = (a as usize, b as usize);
                if !alive[x] || !alive[y] {
                    continue; // lazy deletion
                }
                let key = objective.cost(x, y);
                stats.exact_cost_evals += 1;
                assert!(!key.is_nan(), "merge cost of ({x}, {y}) is NaN");
                heap.push(Entry {
                    key,
                    kind: KIND_EXACT,
                    a,
                    b,
                });
            }
            _ => {
                let (x, y) = (a as usize, b as usize);
                if !alive[x] || !alive[y] {
                    continue; // lazy deletion
                }
                alive[x] = false;
                alive[y] = false;
                objective.merge(x, y, next)?;
                merges.push((x, y));
                live.retain(|&n| alive[n]);
                batch.clear();
                batch.extend(live.iter().map(|&n| (n as u32, next as u32)));
                stats.bound_evals += batch.len() as u64;
                for entry in evaluate_pairs(&*objective, &batch, KIND_BOUND) {
                    heap.push(entry);
                }
                alive[next] = true;
                live.push(next);
                next += 1;
            }
        }
    }

    Ok((Topology::from_merges(num_leaves, &merges)?, stats))
}

/// The pre-pruning engine: evaluates the exact cost of **every** live pair
/// (~N²/2 initial candidates plus a full live-set sweep per merge). Kept
/// as the reference implementation for [`run_greedy_checked`], the
/// property tests, and the `BENCH_greedy` baselines.
///
/// # Errors
///
/// As [`run_greedy`].
pub fn run_greedy_exhaustive<O: MergeObjective>(
    num_leaves: usize,
    objective: &mut O,
) -> Result<Topology, CtsError> {
    run_greedy_exhaustive_instrumented(num_leaves, objective).map(|(topology, _)| topology)
}

/// [`run_greedy_exhaustive`] with its [`GreedyStats`] instrumentation.
///
/// # Errors
///
/// As [`run_greedy`].
#[expect(
    clippy::expect_used,
    reason = "the heap holds a candidate for every live pair until one root remains"
)]
pub fn run_greedy_exhaustive_instrumented<O: MergeObjective>(
    num_leaves: usize,
    objective: &mut O,
) -> Result<(Topology, GreedyStats), CtsError> {
    let mut stats = GreedyStats::default();
    if num_leaves == 0 {
        return Err(CtsError::NoSinks);
    }
    if num_leaves == 1 {
        return Ok((Topology::single_sink()?, stats));
    }

    let total = 2 * num_leaves - 1;
    let mut alive = vec![false; total];
    let mut live: Vec<usize> = (0..num_leaves).collect();
    for &i in &live {
        alive[i] = true;
    }

    // Initial candidate set: all leaf pairs, evaluated in parallel, then
    // heapified in one shot.
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(num_leaves * (num_leaves - 1) / 2);
    for i in 0..live.len() {
        for j in (i + 1)..live.len() {
            pairs.push((live[i] as u32, live[j] as u32));
        }
    }
    stats.exact_cost_evals += pairs.len() as u64;
    let mut heap = BinaryHeap::from(evaluate_pairs(&*objective, &pairs, KIND_EXACT));
    drop(pairs);

    let mut merges = Vec::with_capacity(num_leaves - 1);
    let mut next = num_leaves;
    let mut batch: Vec<(u32, u32)> = Vec::with_capacity(num_leaves);
    while next < total {
        let Entry { a, b, .. } = heap.pop().expect("heap exhausted before root was formed");
        stats.heap_pops += 1;
        let (a, b) = (a as usize, b as usize);
        if !alive[a] || !alive[b] {
            continue; // lazy deletion
        }
        alive[a] = false;
        alive[b] = false;
        objective.merge(a, b, next)?;
        merges.push((a, b));
        live.retain(|&n| alive[n]);
        batch.clear();
        batch.extend(live.iter().map(|&n| (n as u32, next as u32)));
        stats.exact_cost_evals += batch.len() as u64;
        for entry in evaluate_pairs(&*objective, &batch, KIND_EXACT) {
            heap.push(entry);
        }
        alive[next] = true;
        live.push(next);
        next += 1;
    }

    Ok((Topology::from_merges(num_leaves, &merges)?, stats))
}

/// `ExhaustiveCheck` debug mode: runs **both** engines on clones of the
/// same objective and asserts the topologies are bit-identical before
/// returning the pruned result. Meant for tests and debugging sessions —
/// it deliberately pays the exhaustive engine's full cost.
///
/// # Errors
///
/// As [`run_greedy`].
///
/// # Panics
///
/// Panics when the pruned topology differs from the exhaustive one, i.e.
/// when an objective violates the admissibility contract.
pub fn run_greedy_checked<O: MergeObjective + Clone>(
    num_leaves: usize,
    objective: &mut O,
) -> Result<Topology, CtsError> {
    let mut reference = objective.clone();
    let expected = run_greedy_exhaustive(num_leaves, &mut reference)?;
    let (topology, _) = run_greedy_instrumented(num_leaves, objective)?;
    assert_eq!(
        topology, expected,
        "pruned greedy diverged from the exhaustive engine: inadmissible bound?"
    );
    Ok(topology)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Objective over plain points: cost = Manhattan distance; a merge
    /// creates the midpoint. The distance *is* its own admissible bound.
    #[derive(Clone)]
    struct PointObjective {
        points: Vec<Point>,
    }

    impl MergeObjective for PointObjective {
        fn cost(&self, a: usize, b: usize) -> f64 {
            self.points[a].manhattan(self.points[b])
        }
        fn cost_lower_bound(&self, a: usize, b: usize) -> f64 {
            self.cost(a, b)
        }
        fn cost_lower_bound_at_distance(&self, _node: usize, dist: f64) -> f64 {
            dist
        }
        fn location(&self, node: usize) -> Point {
            self.points[node]
        }
        fn merge(&mut self, a: usize, b: usize, k: usize) -> Result<(), CtsError> {
            assert_eq!(k, self.points.len());
            let mid = self.points[a].midpoint(self.points[b]);
            self.points.push(mid);
            Ok(())
        }
    }

    #[test]
    fn merges_closest_pairs_first() {
        // Two tight clusters far apart: the first two merges must be
        // intra-cluster.
        let mut obj = PointObjective {
            points: vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(100.0, 0.0),
                Point::new(101.0, 0.0),
            ],
        };
        let topo = run_greedy(4, &mut obj).unwrap();
        // Nodes 4 and 5 are the cluster merges; the root merges them.
        assert_eq!(
            topo.node(4),
            crate::TopoNode::Internal { left: 0, right: 1 }
        );
        assert_eq!(
            topo.node(5),
            crate::TopoNode::Internal { left: 2, right: 3 }
        );
        assert_eq!(
            topo.node(6),
            crate::TopoNode::Internal { left: 4, right: 5 }
        );
    }

    #[test]
    fn produces_valid_topology_for_various_sizes() {
        for n in [1usize, 2, 3, 7, 16, 33] {
            let mut obj = PointObjective {
                points: (0..n)
                    .map(|i| Point::new((i * 13 % 97) as f64, (i * 29 % 83) as f64))
                    .collect(),
            };
            let topo = run_greedy(n, &mut obj).unwrap();
            assert_eq!(topo.num_leaves(), n);
            assert_eq!(topo.len(), 2 * n - 1);
            assert_eq!(topo.subtree_sizes()[topo.root()], n);
        }
    }

    #[test]
    fn zero_sinks_is_an_error() {
        let mut obj = PointObjective { points: vec![] };
        assert_eq!(run_greedy(0, &mut obj).unwrap_err(), CtsError::NoSinks);
        let mut obj = PointObjective { points: vec![] };
        assert_eq!(
            run_greedy_exhaustive(0, &mut obj).unwrap_err(),
            CtsError::NoSinks
        );
    }

    #[test]
    fn deterministic_under_ties() {
        // Four corners of a square: all intra-side distances tie; the
        // tie-break on indices must make runs reproducible.
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
        ];
        let run = || {
            let mut obj = PointObjective {
                points: points.clone(),
            };
            run_greedy(4, &mut obj).unwrap()
        };
        assert_eq!(run(), run());
    }

    /// The parallel batch path (> `PARALLEL_THRESHOLD` initial pairs) must
    /// produce the same topology run to run — determinism is independent
    /// of threading.
    #[test]
    fn parallel_path_is_deterministic() {
        // 128 leaves -> 8128 initial pairs > PARALLEL_THRESHOLD.
        let points: Vec<Point> = (0..128)
            .map(|i| Point::new(f64::from(i * 37 % 997), f64::from(i * 71 % 983)))
            .collect();
        let run = || {
            let mut obj = PointObjective {
                points: points.clone(),
            };
            run_greedy_exhaustive(128, &mut obj).unwrap()
        };
        assert_eq!(run(), run());
    }

    /// The pruned engine must commit the exact same merges as the
    /// exhaustive engine — including on highly degenerate (tied, collinear,
    /// coincident) inputs.
    #[test]
    fn pruned_matches_exhaustive_on_assorted_layouts() {
        let layouts: Vec<Vec<Point>> = vec![
            // Pseudo-random scatter.
            (0..97)
                .map(|i| Point::new(f64::from(i * 131 % 1009), f64::from(i * 197 % 977)))
                .collect(),
            // Degenerate: everything on one horizontal line.
            (0..40)
                .map(|i| Point::new(f64::from(i * i % 211), 0.0))
                .collect(),
            // Degenerate: many coincident points.
            (0..24).map(|i| Point::new(f64::from(i % 3), 0.0)).collect(),
            // Tiny instances.
            vec![Point::new(3.0, 4.0), Point::new(5.0, 6.0)],
            vec![Point::ORIGIN; 2],
        ];
        for points in layouts {
            let n = points.len();
            let mut pruned_obj = PointObjective {
                points: points.clone(),
            };
            let mut exhaustive_obj = PointObjective { points };
            let (pruned, stats) = run_greedy_instrumented(n, &mut pruned_obj).unwrap();
            let (exhaustive, ref_stats) =
                run_greedy_exhaustive_instrumented(n, &mut exhaustive_obj).unwrap();
            assert_eq!(pruned, exhaustive, "n = {n}");
            assert!(
                stats.exact_cost_evals <= ref_stats.exact_cost_evals,
                "pruning must not evaluate more exact costs: {stats:?} vs {ref_stats:?}"
            );
        }
    }

    /// On a large scattered instance the pruned engine must do far fewer
    /// exact evaluations — here at least 5x fewer.
    #[test]
    fn pruning_cuts_exact_evaluations() {
        let points: Vec<Point> = (0..300)
            .map(|i| Point::new(f64::from(i * 131 % 10_007), f64::from(i * 197 % 9_973)))
            .collect();
        let mut pruned_obj = PointObjective {
            points: points.clone(),
        };
        let mut exhaustive_obj = PointObjective { points };
        let (pruned, stats) = run_greedy_instrumented(300, &mut pruned_obj).unwrap();
        let (exhaustive, ref_stats) =
            run_greedy_exhaustive_instrumented(300, &mut exhaustive_obj).unwrap();
        assert_eq!(pruned, exhaustive);
        assert!(
            stats.exact_cost_evals * 5 <= ref_stats.exact_cost_evals,
            "expected >=5x fewer exact evals, got {} vs {}",
            stats.exact_cost_evals,
            ref_stats.exact_cost_evals
        );
        assert!(stats.ring_expansions > 0);
    }

    #[test]
    fn checked_mode_validates_equivalence() {
        let mut obj = PointObjective {
            points: (0..50)
                .map(|i| Point::new(f64::from(i * 37 % 199), f64::from(i * 53 % 211)))
                .collect(),
        };
        let topo = run_greedy_checked(50, &mut obj).unwrap();
        assert_eq!(topo.num_leaves(), 50);
    }

    /// An inadmissible bound must be caught by the checked mode.
    #[test]
    #[should_panic(expected = "diverged")]
    fn checked_mode_catches_inadmissible_bounds() {
        #[derive(Clone)]
        struct Lying(PointObjective);
        impl MergeObjective for Lying {
            fn cost(&self, a: usize, b: usize) -> f64 {
                self.0.cost(a, b)
            }
            fn cost_lower_bound(&self, a: usize, b: usize) -> f64 {
                // Inverts the ordering: near pairs get huge "bounds".
                1e9 - self.0.cost(a, b)
            }
            fn cost_lower_bound_at_distance(&self, _node: usize, _dist: f64) -> f64 {
                1e9
            }
            fn location(&self, node: usize) -> Point {
                self.0.location(node)
            }
            fn merge(&mut self, a: usize, b: usize, k: usize) -> Result<(), CtsError> {
                self.0.merge(a, b, k)
            }
        }
        let mut obj = Lying(PointObjective {
            points: (0..12)
                .map(|i| Point::new(f64::from(i * 31 % 89), f64::from(i * 17 % 97)))
                .collect(),
        });
        let _ = run_greedy_checked(12, &mut obj);
    }

    #[test]
    fn entry_ordering_is_min_first_with_kind_tiebreak() {
        let mut h = BinaryHeap::new();
        h.push(Entry {
            key: 5.0,
            kind: KIND_EXACT,
            a: 0,
            b: 1,
        });
        h.push(Entry {
            key: 1.0,
            kind: KIND_EXACT,
            a: 2,
            b: 3,
        });
        h.push(Entry {
            key: 1.0,
            kind: KIND_BOUND,
            a: 4,
            b: 5,
        });
        h.push(Entry {
            key: 1.0,
            kind: KIND_EXPAND,
            a: 6,
            b: 2,
        });
        // Equal keys: expansion, then bound, then exact.
        assert_eq!(h.pop().unwrap().kind, KIND_EXPAND);
        assert_eq!(h.pop().unwrap().kind, KIND_BOUND);
        assert_eq!(h.pop().unwrap().kind, KIND_EXACT);
        assert_eq!(h.pop().unwrap().key, 5.0);
    }
}
