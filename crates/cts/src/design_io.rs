//! Save/load of routed designs: sinks, topology, per-edge devices (post
//! sizing) and the clock source, in a line-oriented text format.
//!
//! Re-embedding a loaded design with [`embed`](crate::embed) (no sizing —
//! the saved devices already carry their final sizes) reproduces the
//! original tree exactly, so routed results can be archived, diffed and
//! re-evaluated without re-running the router.
//!
//! ```text
//! gcr-design v1
//! source <x> <y>
//! sinks <N>
//! <x> <y> <cap>            × N
//! merges <N-1>
//! <left> <right>           × N-1
//! devices <2N-1>
//! - | <cin> <rout> <d0> <area>   × 2N-1   (one per topology node)
//! ```

use std::fmt::Write as _;

use gcr_geometry::Point;
use gcr_rctree::Device;

use crate::{ClockTree, CtsError, DeviceAssignment, Sink, Topology};

/// Serializes a routed design.
///
/// The device of each node is taken from `tree` (post gate-sizing), so the
/// file reproduces the tree bit-exactly under [`embed`](crate::embed).
///
/// # Panics
///
/// Panics if `topology` and `tree` disagree on node count.
#[must_use]
pub fn save_design(topology: &Topology, sinks: &[Sink], tree: &ClockTree, source: Point) -> String {
    assert_eq!(topology.len(), tree.len(), "topology/tree mismatch");
    let mut out = String::from("gcr-design v1\n");
    let _ = writeln!(out, "source {} {}", source.x, source.y);
    let _ = writeln!(out, "sinks {}", sinks.len());
    for s in sinks {
        let _ = writeln!(out, "{} {} {}", s.location().x, s.location().y, s.cap());
    }
    let _ = writeln!(out, "merges {}", topology.len() - topology.num_leaves());
    for (_, node) in topology.bottom_up() {
        if let crate::TopoNode::Internal { left, right } = node {
            let _ = writeln!(out, "{left} {right}");
        }
    }
    let _ = writeln!(out, "devices {}", topology.len());
    for i in 0..topology.len() {
        match tree.node(tree.id(i)).device() {
            Some(d) => {
                let _ = writeln!(
                    out,
                    "{} {} {} {}",
                    d.input_cap(),
                    d.output_res(),
                    d.intrinsic_delay(),
                    d.area()
                );
            }
            None => out.push_str("-\n"),
        }
    }
    out
}

/// A design loaded by [`load_design`].
#[derive(Clone, Debug)]
pub struct LoadedDesign {
    /// Sink locations and loads.
    pub sinks: Vec<Sink>,
    /// The merge structure.
    pub topology: Topology,
    /// Per-edge devices, final sizes included.
    pub assignment: DeviceAssignment,
    /// The clock source location.
    pub source: Point,
}

/// Parses a design saved by [`save_design`].
///
/// # Errors
///
/// Returns [`CtsError::InvalidTopology`] for any structural or syntactic
/// problem (with the offending detail in the message).
pub fn load_design(text: &str) -> Result<LoadedDesign, CtsError> {
    let bad = |reason: String| CtsError::InvalidTopology { reason };
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let mut next = |what: &str| {
        lines
            .next()
            .ok_or_else(|| bad(format!("unexpected end of file, expected {what}")))
    };

    let header = next("header")?;
    if header.trim() != "gcr-design v1" {
        return Err(bad(format!("unknown header `{header}`")));
    }

    let source_line = next("source")?;
    let source = {
        let mut it = source_line.split_whitespace();
        if it.next() != Some("source") {
            return Err(bad(format!("expected `source x y`, got `{source_line}`")));
        }
        let parse = |tok: Option<&str>| -> Result<f64, CtsError> {
            tok.ok_or_else(|| bad("missing source coordinate".into()))?
                .parse()
                .map_err(|e| bad(format!("source coordinate: {e}")))
        };
        Point::new(parse(it.next())?, parse(it.next())?)
    };

    let count_after = |line: &str, key: &str| -> Result<usize, CtsError> {
        let mut it = line.split_whitespace();
        if it.next() != Some(key) {
            return Err(bad(format!("expected `{key} <n>`, got `{line}`")));
        }
        it.next()
            .ok_or_else(|| bad(format!("missing count after {key}")))?
            .parse()
            .map_err(|e| bad(format!("{key} count: {e}")))
    };

    let n = count_after(next("sinks")?, "sinks")?;
    let mut sinks = Vec::with_capacity(n);
    for _ in 0..n {
        let line = next("a sink")?;
        let mut it = line.split_whitespace();
        let mut num = |what: &str| -> Result<f64, CtsError> {
            it.next()
                .ok_or_else(|| bad(format!("sink line missing {what}")))?
                .parse()
                .map_err(|e| bad(format!("sink {what}: {e}")))
        };
        let (x, y, cap) = (num("x")?, num("y")?, num("cap")?);
        if !(cap.is_finite() && cap >= 0.0) {
            return Err(bad(format!("invalid sink cap {cap}")));
        }
        sinks.push(Sink::new(Point::new(x, y), cap));
    }

    let m = count_after(next("merges")?, "merges")?;
    let mut merges = Vec::with_capacity(m);
    for _ in 0..m {
        let line = next("a merge")?;
        let mut it = line.split_whitespace();
        let mut idx = |what: &str| -> Result<usize, CtsError> {
            it.next()
                .ok_or_else(|| bad(format!("merge line missing {what}")))?
                .parse()
                .map_err(|e| bad(format!("merge {what}: {e}")))
        };
        merges.push((idx("left")?, idx("right")?));
    }
    let topology = Topology::from_merges(n, &merges)?;

    let d = count_after(next("devices")?, "devices")?;
    if d != topology.len() {
        return Err(bad(format!(
            "device count {d} does not match {} nodes",
            topology.len()
        )));
    }
    let mut assignment = DeviceAssignment::none(&topology);
    for i in 0..d {
        let line = next("a device")?;
        if line.trim() == "-" {
            continue;
        }
        let mut it = line.split_whitespace();
        let mut num = |what: &str| -> Result<f64, CtsError> {
            it.next()
                .ok_or_else(|| bad(format!("device line missing {what}")))?
                .parse()
                .map_err(|e| bad(format!("device {what}: {e}")))
        };
        let (cin, rout, d0, area) = (num("cin")?, num("rout")?, num("d0")?, num("area")?);
        if !(cin >= 0.0 && rout > 0.0 && d0 >= 0.0 && area >= 0.0)
            || [cin, rout, d0, area].iter().any(|v| !v.is_finite())
        {
            return Err(bad(format!("invalid device parameters on node {i}")));
        }
        assignment.set(i, Some(Device::new(cin, rout, d0, area)));
    }

    Ok(LoadedDesign {
        sinks,
        topology,
        assignment,
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{embed, embed_sized, nearest_neighbor_topology, SizingLimits};
    use gcr_rctree::Technology;

    fn routed() -> (Topology, Vec<Sink>, ClockTree, Point, Technology) {
        let tech = Technology::default();
        let sinks: Vec<Sink> = (0..9)
            .map(|i| {
                Sink::new(
                    Point::new(
                        (f64::from(i) * 3_777.0) % 12_000.0,
                        (f64::from(i) * 2_333.0) % 12_000.0,
                    ),
                    0.02 + 0.01 * f64::from(i % 3),
                )
            })
            .collect();
        let topo = nearest_neighbor_topology(&tech, &sinks, Some(tech.and_gate())).unwrap();
        let mut assignment = DeviceAssignment::everywhere(&topo, tech.and_gate());
        assignment.set(2, None);
        assignment.set(10, None);
        let source = Point::new(6_000.0, 6_000.0);
        let tree = embed_sized(
            &topo,
            &sinks,
            &tech,
            &assignment,
            source,
            SizingLimits::default(),
        )
        .unwrap();
        (topo, sinks, tree, source, tech)
    }

    #[test]
    fn save_load_reproduces_the_tree_exactly() {
        let (topo, sinks, tree, source, tech) = routed();
        let text = save_design(&topo, &sinks, &tree, source);
        let loaded = load_design(&text).unwrap();
        assert_eq!(loaded.topology, topo);
        assert_eq!(loaded.sinks.len(), sinks.len());
        assert_eq!(loaded.source, source);
        // Re-embedding without sizing (devices already sized) reproduces
        // the original tree bit-for-bit.
        let rebuilt = embed(
            &loaded.topology,
            &loaded.sinks,
            &tech,
            &loaded.assignment,
            loaded.source,
        )
        .unwrap();
        assert_eq!(rebuilt, tree);
    }

    #[test]
    fn text_round_trips_through_itself() {
        let (topo, sinks, tree, source, tech) = routed();
        let text = save_design(&topo, &sinks, &tree, source);
        let loaded = load_design(&text).unwrap();
        let rebuilt = embed(
            &loaded.topology,
            &loaded.sinks,
            &tech,
            &loaded.assignment,
            loaded.source,
        )
        .unwrap();
        let text2 = save_design(&loaded.topology, &loaded.sinks, &rebuilt, loaded.source);
        assert_eq!(text, text2);
    }

    #[test]
    fn malformed_inputs_are_rejected_with_context() {
        assert!(load_design("nope").is_err());
        assert!(load_design("gcr-design v1\nsource 0 0\nsinks 1\n1 2 0.05\nmerges 5\n").is_err());
        let err = load_design("gcr-design v1\nsource 0 x\n").unwrap_err();
        assert!(err.to_string().contains("source"));
        let err =
            load_design("gcr-design v1\nsource 0 0\nsinks 1\n1 2 0.05\nmerges 0\ndevices 7\n")
                .unwrap_err();
        assert!(err.to_string().contains("device count"));
        // Invalid device params.
        let err = load_design(
            "gcr-design v1\nsource 0 0\nsinks 1\n1 2 0.05\nmerges 0\ndevices 1\n0.1 0 0 0\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("device parameters"));
    }
}
