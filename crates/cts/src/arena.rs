//! Struct-of-arrays storage for the bottom-up merge engine.
//!
//! During greedy topology construction every candidate evaluation needs a
//! handful of per-subtree scalars: the merging region, the Elmore delay
//! polynomial coefficients, and the capacitance the subtree presents to a
//! prospective parent. [`MergeArena`] stores each of those as its own
//! dense vector indexed by topology node, so the hot loops of the greedy
//! engine scan contiguous memory instead of chasing per-node structs, and
//! the per-merge coefficient computation of
//! [`SubtreeState::delay_coefficients`] happens **once per node** (at
//! push time) instead of once per candidate evaluation.

use gcr_geometry::{Point, Trr};
use gcr_rctree::{Device, Technology};

use crate::merge::{balanced_tap_split, merge_region};
use crate::{CtsError, MergeOutcome, Sink, SubtreeState};

/// u32-indexable struct-of-arrays arena of subtree electrical summaries.
///
/// Each node `i` caches the derived quantities of its [`SubtreeState`]:
///
/// * `ms[i]` — the merging region;
/// * `t0[i]`, `alpha[i]` (plus the shared `beta`) — the Elmore delay
///   polynomial `D(e) = t0 + α·e + β·e²` through the feeding edge;
/// * `pc0[i]`, `pc1[i]` — the presented capacitance as the linear form
///   `pc1·e + pc0` (`pc1 = 0`, `pc0 = C_in` for a gated edge; `pc1 = c`,
///   `pc0 = C_subtree` for a plain wire).
///
/// All values are computed with exactly the expressions of
/// [`SubtreeState::delay_coefficients`] / `presented_cap`, so
/// [`MergeArena::try_merge`] is bit-identical to
/// [`zero_skew_merge`](crate::zero_skew_merge) on the reconstructed
/// states. Entries are immutable once pushed — a merge invalidates
/// nothing, it only appends the new node — which is what lets heap entries
/// of the greedy engine never go stale.
#[derive(Debug)]
pub struct MergeArena {
    unit_res: f64,
    unit_cap: f64,
    /// Shared quadratic coefficient `β = r·c/2` of every delay polynomial.
    beta: f64,
    ms: Vec<Trr>,
    delay: Vec<f64>,
    cap: Vec<f64>,
    t0: Vec<f64>,
    alpha: Vec<f64>,
    pc0: Vec<f64>,
    pc1: Vec<f64>,
    device: Vec<Option<Device>>,
    /// Flat copies of each region's rotated-interval endpoints
    /// (`ms[i].u().lo()` etc.), kept alongside `ms` so
    /// [`distance_batch`](Self::distance_batch) streams four plain `f64`
    /// columns instead of gathering 32-byte `Trr` structs.
    u_lo: Vec<f64>,
    u_hi: Vec<f64>,
    v_lo: Vec<f64>,
    v_hi: Vec<f64>,
}

/// Candidates per step of the batched kernels ([`MergeArena::distance_batch`]
/// and the objectives' `bound_batch` impls). Eight `f64` lanes fill an
/// AVX-512 register and two AVX2 registers; the fixed-width inner loops are
/// branch-free so LLVM unrolls or vectorizes them without `unsafe`.
pub const BOUND_LANES: usize = 8;

/// Copies a vector without shedding its spare capacity, so a cloned
/// objective keeps the zero-reallocation guarantee of its original.
/// (`Vec::clone` allocates exactly `len`, which would make the first
/// merges after a clone reallocate every column.)
#[must_use]
pub fn clone_preserving_capacity<T: Clone>(v: &Vec<T>) -> Vec<T> {
    let mut out = Vec::with_capacity(v.capacity());
    out.extend(v.iter().cloned());
    out
}

impl Clone for MergeArena {
    fn clone(&self) -> Self {
        Self {
            unit_res: self.unit_res,
            unit_cap: self.unit_cap,
            beta: self.beta,
            ms: clone_preserving_capacity(&self.ms),
            delay: clone_preserving_capacity(&self.delay),
            cap: clone_preserving_capacity(&self.cap),
            t0: clone_preserving_capacity(&self.t0),
            alpha: clone_preserving_capacity(&self.alpha),
            pc0: clone_preserving_capacity(&self.pc0),
            pc1: clone_preserving_capacity(&self.pc1),
            device: clone_preserving_capacity(&self.device),
            u_lo: clone_preserving_capacity(&self.u_lo),
            u_hi: clone_preserving_capacity(&self.u_hi),
            v_lo: clone_preserving_capacity(&self.v_lo),
            v_hi: clone_preserving_capacity(&self.v_hi),
        }
    }
}

/// Largest node count the packed-entry / u32 indexing supports: node
/// indices live in 31-bit fields of the greedy engine's packed heap tags
/// (and in u32 [`TreeNode`](crate::TreeNode) children), so `2·n − 1` must
/// stay at or below `2³¹ − 1`.
pub(crate) const NODE_INDEX_LIMIT: usize = (1 << 31) - 1;

impl MergeArena {
    /// Creates an empty arena for `capacity` nodes (pass `2·n − 1` for an
    /// `n`-sink run so the greedy loop never reallocates).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` exceeds the 31-bit node-index budget; use
    /// [`MergeArena::try_new`] to get a [`CtsError::CapacityExceeded`]
    /// instead.
    #[must_use]
    pub fn new(tech: &Technology, capacity: usize) -> Self {
        match Self::try_new(tech, capacity) {
            Ok(arena) => arena,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`MergeArena::new`]: rejects capacities whose node indices
    /// would not fit the engine's packed 31-bit / u32 representation,
    /// *before* any column is allocated — silent index truncation
    /// downstream is never an option.
    ///
    /// # Errors
    ///
    /// Returns [`CtsError::CapacityExceeded`] when `capacity` exceeds
    /// `2³¹ − 1` nodes.
    pub fn try_new(tech: &Technology, capacity: usize) -> Result<Self, CtsError> {
        if capacity > NODE_INDEX_LIMIT {
            return Err(CtsError::CapacityExceeded {
                nodes: capacity,
                limit: NODE_INDEX_LIMIT,
            });
        }
        let unit_res = tech.unit_res();
        let unit_cap = tech.unit_cap();
        Ok(Self {
            unit_res,
            unit_cap,
            beta: unit_res * unit_cap / 2.0,
            ms: Vec::with_capacity(capacity),
            delay: Vec::with_capacity(capacity),
            cap: Vec::with_capacity(capacity),
            t0: Vec::with_capacity(capacity),
            alpha: Vec::with_capacity(capacity),
            pc0: Vec::with_capacity(capacity),
            pc1: Vec::with_capacity(capacity),
            device: Vec::with_capacity(capacity),
            u_lo: Vec::with_capacity(capacity),
            u_hi: Vec::with_capacity(capacity),
            v_lo: Vec::with_capacity(capacity),
            v_hi: Vec::with_capacity(capacity),
        })
    }

    /// Number of stored nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ms.len()
    }

    /// Whether the arena holds no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ms.is_empty()
    }

    /// Appends a subtree state, caching its delay-polynomial and
    /// presented-capacitance coefficients. Returns the new node's index.
    pub fn push_state(&mut self, state: &SubtreeState) -> usize {
        let i = self.ms.len();
        self.ms.push(state.ms);
        self.u_lo.push(state.ms.u().lo());
        self.u_hi.push(state.ms.u().hi());
        self.v_lo.push(state.ms.v().lo());
        self.v_hi.push(state.ms.v().hi());
        self.delay.push(state.delay);
        self.cap.push(state.cap);
        match state.edge_device {
            Some(d) => {
                self.t0
                    .push(state.delay + d.intrinsic_delay() + d.output_res() * state.cap);
                self.alpha
                    .push(self.unit_res * state.cap + d.output_res() * self.unit_cap);
                self.pc0.push(d.input_cap());
                self.pc1.push(0.0);
            }
            None => {
                self.t0.push(state.delay);
                self.alpha.push(self.unit_res * state.cap);
                self.pc0.push(state.cap);
                self.pc1.push(self.unit_cap);
            }
        }
        self.device.push(state.edge_device);
        i
    }

    /// Appends a sink leaf whose feeding edge carries `device`.
    pub fn push_leaf(&mut self, sink: &Sink, device: Option<Device>) -> usize {
        self.push_state(&SubtreeState::leaf_with_device(sink, device))
    }

    /// The merging region of node `i`.
    #[must_use]
    pub fn ms(&self, i: usize) -> &Trr {
        &self.ms[i]
    }

    /// The center of node `i`'s merging region.
    #[must_use]
    pub fn center(&self, i: usize) -> Point {
        self.ms[i].center()
    }

    /// Distance (layout units) between the merging regions of `a` and `b`.
    #[must_use]
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        self.ms[a].distance(&self.ms[b])
    }

    /// Batched [`distance`](Self::distance): writes
    /// `distance(center, candidates[i])` into `out[i]` for every candidate.
    ///
    /// Reads the flat endpoint columns in [`BOUND_LANES`]-wide branch-free
    /// steps (a pure max-chain per candidate), bit-identical to the
    /// per-pair path with `center` as the first argument — the same
    /// subtractions in the same order, so objectives can build their
    /// `bound_batch` kernels on top without perturbing heap keys.
    ///
    /// # Panics
    ///
    /// Panics when `candidates` and `out` differ in length.
    pub fn distance_batch(&self, center: usize, candidates: &[u32], out: &mut [f64]) {
        assert_eq!(candidates.len(), out.len());
        let (c_ulo, c_uhi) = (self.u_lo[center], self.u_hi[center]);
        let (c_vlo, c_vhi) = (self.v_lo[center], self.v_hi[center]);
        let dist = |y: usize| {
            let du = (c_ulo - self.u_hi[y]).max(self.u_lo[y] - c_uhi).max(0.0);
            let dv = (c_vlo - self.v_hi[y]).max(self.v_lo[y] - c_vhi).max(0.0);
            du.max(dv)
        };
        let mut cands = candidates.chunks_exact(BOUND_LANES);
        let mut outs = out.chunks_exact_mut(BOUND_LANES);
        for (cs, os) in (&mut cands).zip(&mut outs) {
            for lane in 0..BOUND_LANES {
                os[lane] = dist(cs[lane] as usize);
            }
        }
        for (&y, o) in cands.remainder().iter().zip(outs.into_remainder()) {
            *o = dist(y as usize);
        }
    }

    /// The Elmore delay (ps) below node `i`.
    #[must_use]
    pub fn delay(&self, i: usize) -> f64 {
        self.delay[i]
    }

    /// The downstream capacitance (pF) at node `i`.
    #[must_use]
    pub fn cap(&self, i: usize) -> f64 {
        self.cap[i]
    }

    /// The device at the top of node `i`'s feeding edge, if any.
    #[must_use]
    pub fn device(&self, i: usize) -> Option<Device> {
        self.device[i]
    }

    /// Reconstructs node `i`'s [`SubtreeState`] (for interop with the
    /// non-arena merge path and for tests).
    #[must_use]
    pub fn state(&self, i: usize) -> SubtreeState {
        SubtreeState {
            ms: self.ms[i],
            delay: self.delay[i],
            cap: self.cap[i],
            edge_device: self.device[i],
        }
    }

    /// Truncates the arena to its first `len` nodes, keeping every
    /// column's spare capacity. This is the rewind primitive of the
    /// incremental ECO engine: leaf rows survive across re-routes while
    /// internal rows from a superseded search are dropped and their
    /// storage reused, so a warm ECO loop appends without reallocating.
    ///
    /// Truncating to a length at or above [`MergeArena::len`] is a no-op.
    pub fn truncate(&mut self, len: usize) {
        self.ms.truncate(len);
        self.delay.truncate(len);
        self.cap.truncate(len);
        self.t0.truncate(len);
        self.alpha.truncate(len);
        self.pc0.truncate(len);
        self.pc1.truncate(len);
        self.device.truncate(len);
        self.u_lo.truncate(len);
        self.u_hi.truncate(len);
        self.v_lo.truncate(len);
        self.v_hi.truncate(len);
    }

    /// The zero-skew merge of nodes `a` and `b` from the cached
    /// coefficients — bit-identical to
    /// [`zero_skew_merge`](crate::zero_skew_merge) on the reconstructed
    /// states, without recomputing the delay polynomials.
    ///
    /// # Errors
    ///
    /// Returns [`CtsError::MergeRegionDisjoint`] exactly when
    /// `zero_skew_merge` would (non-finite geometry).
    pub fn try_merge(&self, a: usize, b: usize) -> Result<MergeOutcome, CtsError> {
        let d = self.ms[a].distance(&self.ms[b]);
        let (ea, eb) = balanced_tap_split(
            d,
            self.t0[a],
            self.alpha[a],
            self.t0[b],
            self.alpha[b],
            self.beta,
        );
        let ms = merge_region(&self.ms[a], &self.ms[b], d, ea, eb)?;
        // Delay measured down either side is identical in exact
        // arithmetic; average the two evaluations to symmetrize rounding.
        let da = self.t0[a] + self.alpha[a] * ea + self.beta * ea * ea;
        let db = self.t0[b] + self.alpha[b] * eb + self.beta * eb * eb;
        let delay = 0.5 * (da + db);
        let cap = (self.pc1[a] * ea + self.pc0[a]) + (self.pc1[b] * eb + self.pc0[b]);
        Ok(MergeOutcome {
            ea,
            eb,
            ms,
            delay,
            cap,
        })
    }

    /// Merges `a` and `b` and pushes the resulting node (whose future
    /// parent edge carries `device`), returning the merge outcome.
    ///
    /// # Errors
    ///
    /// As [`MergeArena::try_merge`].
    pub fn merge_push(
        &mut self,
        a: usize,
        b: usize,
        device: Option<Device>,
    ) -> Result<MergeOutcome, CtsError> {
        let outcome = self.try_merge(a, b)?;
        self.push_state(&outcome.gated_state(device));
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zero_skew_merge;
    use gcr_geometry::Point;

    fn sinks() -> Vec<Sink> {
        vec![
            Sink::new(Point::new(0.0, 0.0), 0.05),
            Sink::new(Point::new(1000.0, 0.0), 0.11),
            Sink::new(Point::new(300.0, 800.0), 0.02),
            Sink::new(Point::new(5.0, 5.0), 0.07),
        ]
    }

    /// Every cached quantity and every merge must be bit-identical to the
    /// non-arena [`zero_skew_merge`] path, gated and ungated.
    #[test]
    fn arena_merges_match_zero_skew_merge_bitwise() {
        let tech = Technology::default();
        for device in [None, Some(tech.and_gate()), Some(tech.buffer())] {
            let sinks = sinks();
            let mut arena = MergeArena::new(&tech, 2 * sinks.len() - 1);
            let mut states: Vec<SubtreeState> = sinks
                .iter()
                .map(|s| SubtreeState::leaf_with_device(s, device))
                .collect();
            for s in &sinks {
                arena.push_leaf(s, device);
            }
            // Merge in a fixed order, comparing outcomes at every step.
            for (a, b) in [(0usize, 1usize), (2, 3), (4, 5)] {
                let expect = zero_skew_merge(&tech, &states[a], &states[b]).unwrap();
                let got = arena.try_merge(a, b).unwrap();
                assert_eq!(got, expect, "try_merge({a}, {b}) with {device:?}");
                let pushed = arena.merge_push(a, b, device).unwrap();
                assert_eq!(pushed, expect);
                states.push(expect.gated_state(device));
                let k = arena.len() - 1;
                assert_eq!(arena.state(k), states[k]);
                assert_eq!(arena.distance(a, b), states[a].distance(&states[b]));
                assert_eq!(arena.center(k), states[k].ms.center());
            }
        }
    }

    /// The batched distance kernel must agree bitwise with the per-pair
    /// path on every (center, candidate) combination, including lane
    /// remainders and region-vs-region (non-point) distances.
    #[test]
    fn distance_batch_matches_per_pair_distance_bitwise() {
        let tech = Technology::default();
        let sinks: Vec<Sink> = (0..23)
            .map(|i| {
                Sink::new(
                    Point::new(f64::from(i * 131 % 1009), f64::from(i * 197 % 977)),
                    0.02 + 0.01 * f64::from(i % 4),
                )
            })
            .collect();
        let mut arena = MergeArena::new(&tech, 2 * sinks.len() - 1);
        for s in &sinks {
            arena.push_leaf(s, None);
        }
        // A few merges so some nodes carry segment (non-point) regions.
        for (a, b) in [(0usize, 1usize), (2, 3), (23, 24), (4, 25)] {
            arena.merge_push(a, b, None).unwrap();
        }
        let n = arena.len();
        let mut out = vec![0.0; n];
        for center in 0..n {
            let candidates: Vec<u32> = (0..n as u32).collect();
            arena.distance_batch(center, &candidates, &mut out[..n]);
            for (y, &got) in candidates.iter().zip(&out[..n]) {
                let want = arena.distance(center, *y as usize);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "distance({center}, {y}): {got} vs {want}"
                );
            }
            // Exercise the remainder path with a short, unaligned slice.
            let short: Vec<u32> = (0..5).collect();
            arena.distance_batch(center, &short, &mut out[..5]);
            for (y, &got) in short.iter().zip(&out[..5]) {
                assert_eq!(got.to_bits(), arena.distance(center, *y as usize).to_bits());
            }
        }
    }

    #[test]
    fn non_finite_state_surfaces_as_disjoint_error() {
        let tech = Technology::default();
        let mut arena = MergeArena::new(&tech, 3);
        let mut bad = SubtreeState::leaf(&Sink::new(Point::ORIGIN, 0.05));
        bad.delay = f64::NAN;
        arena.push_state(&bad);
        arena.push_leaf(&Sink::new(Point::new(100.0, 0.0), 0.05), None);
        let err = arena.try_merge(0, 1).unwrap_err();
        assert!(matches!(err, CtsError::MergeRegionDisjoint { .. }), "{err}");
    }

    /// An arena sized past the 31-bit node budget must refuse up front —
    /// with `try_new` as an error, with `new` as a panic — rather than
    /// hand out indices that would later truncate in u32/packed storage.
    #[test]
    fn oversized_capacity_is_rejected_before_allocation() {
        let tech = Technology::default();
        let over = NODE_INDEX_LIMIT + 1;
        let err = MergeArena::try_new(&tech, over).unwrap_err();
        assert_eq!(
            err,
            CtsError::CapacityExceeded {
                nodes: over,
                limit: NODE_INDEX_LIMIT,
            }
        );
        assert!(MergeArena::try_new(&tech, 8).is_ok());
    }

    /// Rewinding to the leaf count and re-merging must reproduce the
    /// dropped internal rows bitwise, without growing any column's
    /// capacity (the warm-ECO reuse contract).
    #[test]
    fn truncate_rewinds_to_leaves_and_remerge_is_bitwise_stable() {
        let tech = Technology::default();
        let sinks = sinks();
        let mut arena = MergeArena::new(&tech, 2 * sinks.len() - 1);
        for s in &sinks {
            arena.push_leaf(s, Some(tech.and_gate()));
        }
        let first = arena.merge_push(0, 1, None).unwrap();
        let second = arena.merge_push(2, 3, None).unwrap();
        let cap_before = arena.ms.capacity();
        arena.truncate(sinks.len());
        assert_eq!(arena.len(), sinks.len());
        assert_eq!(arena.merge_push(0, 1, None).unwrap(), first);
        assert_eq!(arena.merge_push(2, 3, None).unwrap(), second);
        assert_eq!(arena.ms.capacity(), cap_before, "capacity must survive");
        // Truncating past the end is a no-op.
        arena.truncate(100);
        assert_eq!(arena.len(), sinks.len() + 2);
    }

    #[test]
    fn accessors_expose_pushed_state() {
        let tech = Technology::default();
        let mut arena = MergeArena::new(&tech, 1);
        assert!(arena.is_empty());
        let s = Sink::new(Point::new(3.0, 4.0), 0.02);
        let i = arena.push_leaf(&s, Some(tech.and_gate()));
        assert_eq!(i, 0);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.delay(0), 0.0);
        assert_eq!(arena.cap(0), 0.02);
        assert_eq!(arena.device(0), Some(tech.and_gate()));
        assert_eq!(arena.center(0), Point::new(3.0, 4.0));
        assert!(arena.ms(0).is_point());
    }
}
