//! Property-based tests for the extension modules: bounded-skew embedding
//! and rectilinear route realization.

use gcr_cts::{
    embed, embed_bounded_skew, embed_sized, load_design, nearest_neighbor_topology, realize_routes,
    save_design, DeviceAssignment, Sink, SizingLimits,
};
use gcr_geometry::Point;
use gcr_rctree::Technology;
use proptest::prelude::*;

fn sinks_strategy(max: usize) -> impl Strategy<Value = Vec<Sink>> {
    prop::collection::vec((0.0..40_000.0f64, 0.0..40_000.0f64, 0.005..0.3f64), 2..max).prop_map(
        |v| {
            v.into_iter()
                .map(|(x, y, c)| Sink::new(Point::new(x, y), c))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bounded-skew embeddings respect the budget, and the budget buys
    /// wire monotonically.
    #[test]
    fn bounded_skew_budget_and_monotonicity(
        sinks in sinks_strategy(16),
        bound in 0.0..200.0f64,
    ) {
        let tech = Technology::default();
        let topo = nearest_neighbor_topology(&tech, &sinks, None).unwrap();
        let assignment = DeviceAssignment::none(&topo);
        let src = Point::new(20_000.0, 20_000.0);
        let zero = embed_bounded_skew(&topo, &sinks, &tech, &assignment, src, 0.0).unwrap();
        let bounded = embed_bounded_skew(&topo, &sinks, &tech, &assignment, src, bound).unwrap();
        prop_assert!(bounded.verify_skew(&tech) <= bound + 1e-6,
            "skew {} exceeds bound {bound}", bounded.verify_skew(&tech));
        // Wire monotonicity holds strongly but not per-instance exactly:
        // the interval-midpoint split can shift merge regions and later
        // placements by a hair. Allow 1% slack; the asymmetric-fixture
        // unit test asserts real savings.
        prop_assert!(
            bounded.total_wire_length() <= zero.total_wire_length() * 1.01 + 1e-6,
            "budget increased wire: {} vs {}",
            bounded.total_wire_length(), zero.total_wire_length());
        // Zero-bound equals the exact zero-skew embedding.
        let zst = embed(&topo, &sinks, &tech, &assignment, src).unwrap();
        prop_assert!((zero.total_wire_length() - zst.total_wire_length()).abs() < 1e-6);
    }

    /// Design save/load reproduces any routed tree bit-exactly.
    #[test]
    fn design_io_round_trip(sinks in sinks_strategy(14), gated in any::<bool>(), strip in any::<u32>()) {
        let tech = Technology::default();
        let device = gated.then(|| tech.and_gate());
        let topo = nearest_neighbor_topology(&tech, &sinks, device).unwrap();
        let mut assignment = match device {
            Some(d) => DeviceAssignment::everywhere(&topo, d),
            None => DeviceAssignment::none(&topo),
        };
        for (bit, i) in (0..topo.len()).enumerate() {
            if strip & (1 << (bit % 32)) != 0 {
                assignment.set(i, None);
            }
        }
        let source = Point::new(20_000.0, 20_000.0);
        let tree = embed_sized(&topo, &sinks, &tech, &assignment, source, SizingLimits::default())
            .unwrap();
        let text = save_design(&topo, &sinks, &tree, source);
        let loaded = load_design(&text).unwrap();
        let rebuilt = embed(
            &loaded.topology, &loaded.sinks, &tech, &loaded.assignment, loaded.source,
        ).unwrap();
        prop_assert_eq!(rebuilt, tree);
    }

    /// Every realized polyline is rectilinear, hits its endpoints, and has
    /// exactly the edge's electrical length — for gated and plain trees.
    #[test]
    fn realized_routes_are_exact(sinks in sinks_strategy(16), gated in any::<bool>()) {
        let tech = Technology::default();
        let device = gated.then(|| tech.and_gate());
        let topo = nearest_neighbor_topology(&tech, &sinks, device).unwrap();
        let assignment = match device {
            Some(d) => DeviceAssignment::everywhere(&topo, d),
            None => DeviceAssignment::none(&topo),
        };
        let tree = embed(&topo, &sinks, &tech, &assignment, Point::ORIGIN).unwrap();
        let routes = realize_routes(&tree);
        prop_assert_eq!(routes.len(), tree.len() - 1);
        let mut total = 0.0;
        for r in &routes {
            prop_assert!(r.is_rectilinear());
            let target = tree.node(r.child).electrical_length();
            prop_assert!((r.length() - target).abs() < 1e-6 * target.max(1.0));
            total += r.length();
        }
        prop_assert!((total - tree.total_wire_length()).abs() < 1e-6 * total.max(1.0));
    }
}
