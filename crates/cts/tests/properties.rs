//! Property-based tests: every embedding the DME substrate produces must
//! be exactly zero-skew under the independent Elmore oracle, regardless of
//! sink placement, loads, or device policy.

use gcr_cts::{
    build_buffered_tree, embed, nearest_neighbor_topology, DeviceAssignment, Sink, Topology,
};
use gcr_geometry::Point;
use gcr_rctree::Technology;
use proptest::prelude::*;

fn sinks_strategy(max: usize) -> impl Strategy<Value = Vec<Sink>> {
    prop::collection::vec((0.0..50_000.0f64, 0.0..50_000.0f64, 0.005..0.3f64), 2..max).prop_map(
        |v| {
            v.into_iter()
                .map(|(x, y, c)| Sink::new(Point::new(x, y), c))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zero skew holds for plain, buffered and gated embeddings of
    /// nearest-neighbor topologies over random sinks.
    #[test]
    fn all_embeddings_are_zero_skew(sinks in sinks_strategy(24)) {
        let tech = Technology::default();
        let source = Point::new(25_000.0, 25_000.0);

        let buffered = build_buffered_tree(&tech, &sinks, source).unwrap();
        let delay = buffered.source_to_sink_delay(&tech);
        prop_assert!(buffered.verify_skew(&tech) <= 1e-9 * delay.max(1.0),
            "buffered skew {} vs delay {delay}", buffered.verify_skew(&tech));

        let topo = nearest_neighbor_topology(&tech, &sinks, Some(tech.and_gate())).unwrap();
        let gated = embed(
            &topo, &sinks, &tech,
            &DeviceAssignment::everywhere(&topo, tech.and_gate()),
            source,
        ).unwrap();
        let gdelay = gated.source_to_sink_delay(&tech);
        prop_assert!(gated.verify_skew(&tech) <= 1e-9 * gdelay.max(1.0));

        let plain_topo = nearest_neighbor_topology(&tech, &sinks, None).unwrap();
        let plain = embed(
            &plain_topo, &sinks, &tech,
            &DeviceAssignment::none(&plain_topo),
            source,
        ).unwrap();
        let pdelay = plain.source_to_sink_delay(&tech);
        prop_assert!(plain.verify_skew(&tech) <= 1e-9 * pdelay.max(1.0));
    }

    /// Electrical edge lengths always cover the placed Manhattan distance,
    /// and total wire length is at least the placed total.
    #[test]
    fn electrical_lengths_cover_placement(sinks in sinks_strategy(20)) {
        let tech = Technology::default();
        let tree = build_buffered_tree(&tech, &sinks, Point::ORIGIN).unwrap();
        for id in tree.ids() {
            let node = tree.node(id);
            if let Some(p) = node.parent() {
                let dist = node.location().manhattan(tree.node(p).location());
                prop_assert!(node.electrical_length() + 1e-6 >= dist);
            }
        }
        prop_assert!(tree.snaked_wire_length() >= -1e-6);
    }

    /// Re-embedding the same topology with gates removed still yields zero
    /// skew (the re-balancing property the gate-reduction heuristic needs).
    #[test]
    fn reembedding_after_device_removal_is_zero_skew(
        sinks in sinks_strategy(16),
        strip_mask in any::<u32>(),
    ) {
        let tech = Technology::default();
        let source = Point::new(25_000.0, 25_000.0);
        let topo = nearest_neighbor_topology(&tech, &sinks, Some(tech.and_gate())).unwrap();
        let mut assignment = DeviceAssignment::everywhere(&topo, tech.and_gate());
        for (bit, i) in (0..topo.len()).enumerate() {
            if strip_mask & (1 << (bit % 32)) != 0 {
                assignment.set(i, None);
            }
        }
        let tree = embed(&topo, &sinks, &tech, &assignment, source).unwrap();
        let delay = tree.source_to_sink_delay(&tech);
        prop_assert!(tree.verify_skew(&tech) <= 1e-9 * delay.max(1.0),
            "skew {} after stripping devices", tree.verify_skew(&tech));
        prop_assert_eq!(tree.device_count(), assignment.device_count());
    }

    /// Merge-sequence validation round-trips through Topology.
    #[test]
    fn greedy_topologies_are_structurally_valid(sinks in sinks_strategy(20)) {
        let tech = Technology::default();
        let topo = nearest_neighbor_topology(&tech, &sinks, None).unwrap();
        prop_assert_eq!(topo.num_leaves(), sinks.len());
        prop_assert_eq!(topo.len(), 2 * sinks.len() - 1);
        // Every non-root node has exactly one parent; sizes telescope.
        let parents = topo.parents();
        let orphans = parents.iter().filter(|p| p.is_none()).count();
        prop_assert_eq!(orphans, 1);
        prop_assert_eq!(topo.subtree_sizes()[topo.root()], sinks.len());
        // Determinism.
        let again = nearest_neighbor_topology(&tech, &sinks, None).unwrap();
        prop_assert_eq!(&topo, &again);
        let _ = Topology::from_merges(1, &[]).unwrap();
    }
}
