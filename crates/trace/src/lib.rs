//! Structured tracing and metrics for the gated clock routing flow.
//!
//! Every stage of the flow — activity-table construction, the greedy
//! switched-capacitance merge, top-down embedding, Equation-3 evaluation,
//! and the `gcr-verify` passes — reports *phase spans* (wall-time
//! intervals on a monotonic clock), *counters* (named totals such as
//! exact-cost evaluations), and *warnings* through a [`Tracer`] handle.
//! Where the events go is decided by the caller via a [`TraceSink`]:
//!
//! * [`NullSink`] — discards everything (and a *disabled* tracer skips
//!   even the clock reads);
//! * [`MemorySink`] — buffers events for test assertions;
//! * [`ChromeTraceSink`] — accumulates events and renders them as a
//!   Chrome-trace JSON file (`chrome://tracing`, Perfetto, Speedscope).
//!
//! # Cost model
//!
//! A disabled tracer ([`Tracer::disabled`]) is a `None` behind one
//! branch: no sink call, no timestamp, no formatting. Library code
//! formats warning text only after checking [`Tracer::enabled`], so the
//! disabled path never allocates — the warm greedy merge loop keeps its
//! zero-allocation invariant with tracing compiled in (and the engine
//! keeps it even under an *active* sink by emitting only aggregated
//! events outside the measured loop window; see
//! `docs/observability.md`).
//!
//! # Example
//!
//! ```
//! use gcr_trace::{MemorySink, Tracer};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let tracer = Tracer::new(sink.clone());
//! {
//!     let _phase = tracer.span("outer");
//!     let _inner = tracer.span("inner");
//!     tracer.counter("widgets", 3.0);
//! }
//! assert_eq!(sink.counter("widgets"), Some(3.0));
//! assert_eq!(sink.nesting().unwrap(), vec![("outer", 0), ("inner", 1)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

pub mod threads;

/// One structured trace event. Timestamps are nanoseconds on the owning
/// [`Tracer`]'s monotonic clock, measured from its creation ([`Tracer`]
/// clones share the epoch, so events from every layer of one run merge
/// onto a single timeline).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A phase span opened (emitted by [`Tracer::span`]).
    Begin {
        /// Span name (see the taxonomy in `docs/observability.md`).
        name: &'static str,
        /// Nanoseconds since the tracer epoch.
        ts_ns: u64,
    },
    /// The most recent unclosed span with this name closed.
    End {
        /// Span name matching the corresponding [`TraceEvent::Begin`].
        name: &'static str,
        /// Nanoseconds since the tracer epoch.
        ts_ns: u64,
    },
    /// A self-contained span reported after the fact — used for
    /// aggregated sub-phase totals (e.g. the greedy engine's per-kind
    /// loop time), where begin/end pairs would have to be emitted from
    /// inside an allocation-free hot loop.
    Complete {
        /// Span name.
        name: &'static str,
        /// Start of the interval, nanoseconds since the tracer epoch.
        start_ns: u64,
        /// Interval length in nanoseconds.
        dur_ns: u64,
    },
    /// A named numeric total or level (monotone counters and gauges share
    /// this event; the distinction is in the name's documentation).
    Counter {
        /// Counter name.
        name: &'static str,
        /// Reported value.
        value: f64,
        /// Nanoseconds since the tracer epoch.
        ts_ns: u64,
    },
    /// A warning from library code (which never writes to stderr
    /// itself); binaries may echo these wherever they see fit.
    Warn {
        /// Warning category (stable, machine-matchable).
        name: &'static str,
        /// Human-readable message.
        message: String,
        /// Nanoseconds since the tracer epoch.
        ts_ns: u64,
    },
}

impl TraceEvent {
    /// The event's name field, whatever its variant.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Begin { name, .. }
            | TraceEvent::End { name, .. }
            | TraceEvent::Complete { name, .. }
            | TraceEvent::Counter { name, .. }
            | TraceEvent::Warn { name, .. } => name,
        }
    }
}

/// A destination for [`TraceEvent`]s.
///
/// Sinks must be `Send + Sync`: one sink is typically shared (via
/// [`Arc`]) by tracer clones living in different layers of the flow, and
/// benchmarks record from timing threads. `record` should be cheap —
/// the built-in sinks push into a mutex-guarded vector and defer all
/// formatting to the final export.
pub trait TraceSink: Send + Sync {
    /// Accepts one event. Ordering within a thread follows call order.
    fn record(&self, event: TraceEvent);
}

/// A sink that discards every event. [`Tracer::new`] with a `NullSink`
/// exercises the full enabled code path (timestamps, event construction)
/// without retaining anything — useful for parity tests; for production
/// "tracing off" prefer [`Tracer::disabled`], which skips the clock
/// reads too.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: TraceEvent) {}
}

/// A sink buffering every event in memory, with query helpers for test
/// assertions.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every recorded event, in record order.
    ///
    /// A poisoned buffer (a recording thread panicked mid-push) is read
    /// through rather than propagated: the events are plain data and a
    /// long-lived service must keep tracing after one worker dies.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The last value recorded for counter `name`, if any.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<f64> {
        self.events().iter().rev().find_map(|e| match e {
            TraceEvent::Counter { name: n, value, .. } if *n == name => Some(*value),
            _ => None,
        })
    }

    /// Every warning message recorded under category `name`.
    #[must_use]
    pub fn warnings(&self, name: &str) -> Vec<String> {
        self.events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Warn {
                    name: n, message, ..
                } if *n == name => Some(message.clone()),
                _ => None,
            })
            .collect()
    }

    /// Replays the begin/end stream and returns each completed span as
    /// `(name, depth)` in *begin* order, depth 0 for top-level spans.
    /// [`TraceEvent::Complete`] spans are reported at the depth of the
    /// stack position they were recorded at.
    ///
    /// # Errors
    ///
    /// Returns a description of the first imbalance: an `End` that
    /// matches no open span, or spans left open at the end of the
    /// stream.
    pub fn nesting(&self) -> Result<Vec<(&'static str, usize)>, String> {
        let mut stack: Vec<&'static str> = Vec::new();
        let mut out = Vec::new();
        for event in self.events() {
            match event {
                TraceEvent::Begin { name, .. } => {
                    out.push((name, stack.len()));
                    stack.push(name);
                }
                TraceEvent::End { name, .. } => match stack.pop() {
                    Some(open) if open == name => {}
                    Some(open) => {
                        return Err(format!("span end `{name}` closes open span `{open}`"))
                    }
                    None => return Err(format!("span end `{name}` with no open span")),
                },
                TraceEvent::Complete { name, .. } => out.push((name, stack.len())),
                TraceEvent::Counter { .. } | TraceEvent::Warn { .. } => {}
            }
        }
        if stack.is_empty() {
            Ok(out)
        } else {
            Err(format!("spans left open: {stack:?}"))
        }
    }
}

impl TraceSink for MemorySink {
    // Poison-tolerant: a worker panicking mid-record must not wedge every
    // later tracing call in a long-lived process (the buffer holds plain
    // data, so reading through the poison is safe).
    fn record(&self, event: TraceEvent) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }
}

/// A sink accumulating events for export in the Chrome trace-event JSON
/// format (the `chrome://tracing` / Perfetto / Speedscope interchange
/// format): spans become `B`/`E`/`X` events, counters become `C` events
/// with a `value` arg, warnings become global instant (`i`) events.
#[derive(Debug, Default)]
pub struct ChromeTraceSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl ChromeTraceSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders the Chrome-trace JSON document for everything recorded so
    /// far.
    ///
    /// A poisoned buffer (a recording thread panicked mid-push) is read
    /// through rather than propagated, so a daemon can still export its
    /// trace after a worker died.
    #[must_use]
    pub fn to_json(&self) -> String {
        let events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::with_capacity(64 + 96 * events.len());
        out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
        let us = |ns: u64| ns as f64 / 1e3;
        for (i, event) in events.iter().enumerate() {
            out.push_str("    ");
            match event {
                TraceEvent::Begin { name, ts_ns } => {
                    let _ = write!(
                        out,
                        "{{\"name\": \"{}\", \"ph\": \"B\", \"pid\": 0, \"tid\": 0, \"ts\": {:.3}}}",
                        escape(name),
                        us(*ts_ns)
                    );
                }
                TraceEvent::End { name, ts_ns } => {
                    let _ = write!(
                        out,
                        "{{\"name\": \"{}\", \"ph\": \"E\", \"pid\": 0, \"tid\": 0, \"ts\": {:.3}}}",
                        escape(name),
                        us(*ts_ns)
                    );
                }
                TraceEvent::Complete {
                    name,
                    start_ns,
                    dur_ns,
                } => {
                    let _ = write!(
                        out,
                        "{{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 0, \"tid\": 0, \
                         \"ts\": {:.3}, \"dur\": {:.3}}}",
                        escape(name),
                        us(*start_ns),
                        us(*dur_ns)
                    );
                }
                TraceEvent::Counter { name, value, ts_ns } => {
                    let _ = write!(
                        out,
                        "{{\"name\": \"{}\", \"ph\": \"C\", \"pid\": 0, \"tid\": 0, \
                         \"ts\": {:.3}, \"args\": {{\"value\": {}}}}}",
                        escape(name),
                        us(*ts_ns),
                        json_number(*value)
                    );
                }
                TraceEvent::Warn {
                    name,
                    message,
                    ts_ns,
                } => {
                    let _ = write!(
                        out,
                        "{{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"g\", \"pid\": 0, \
                         \"tid\": 0, \"ts\": {:.3}, \"args\": {{\"message\": \"{}\"}}}}",
                        escape(name),
                        us(*ts_ns),
                        escape(message)
                    );
                }
            }
            out.push_str(if i + 1 == events.len() { "\n" } else { ",\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the rendered JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error of the write.
    pub fn write_to(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

impl TraceSink for ChromeTraceSink {
    // Poison-tolerant for the same reason as `MemorySink::record`.
    fn record(&self, event: TraceEvent) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }
}

/// A sink decorator for CLI binaries: forwards every event to `inner`
/// unchanged, and additionally echoes [`TraceEvent::Warn`] events to
/// stderr so library warnings stay visible on a terminal even when the
/// trace itself goes to a file. Library code should never print; this
/// decorator is how a binary opts back into on-terminal warnings.
pub struct EchoWarnSink {
    inner: Arc<dyn TraceSink>,
}

impl EchoWarnSink {
    /// Wraps `inner`.
    #[must_use]
    pub fn new(inner: Arc<dyn TraceSink>) -> Self {
        Self { inner }
    }
}

impl TraceSink for EchoWarnSink {
    fn record(&self, event: TraceEvent) {
        if let TraceEvent::Warn { name, message, .. } = &event {
            eprintln!("warning [{name}]: {message}");
        }
        self.inner.record(event);
    }
}

/// JSON string escaping for names and warning messages.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a counter value as a valid JSON number (JSON has no
/// NaN/Infinity; they are clamped to null-adjacent sentinels).
fn json_number(x: f64) -> String {
    if x.is_finite() {
        // Integral values print without a fraction so counters stay
        // exact; everything else keeps full precision.
        if x.fract() == 0.0 && x.abs() < 9e15 {
            format!("{x:.0}")
        } else {
            format!("{x}")
        }
    } else {
        "null".to_owned()
    }
}

/// Shared state behind an enabled tracer: the sink and the monotonic
/// epoch all timestamps are measured from.
#[derive(Clone)]
struct Enabled {
    epoch: Instant,
    sink: Arc<dyn TraceSink>,
}

/// A cheap, cloneable handle through which library code reports trace
/// events. Clones share the sink *and* the epoch, so a tracer passed
/// down the flow produces one coherent timeline.
///
/// The disabled tracer ([`Tracer::disabled`]) is the default and costs
/// one branch per call site.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Enabled>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer feeding `sink`, with its epoch set to "now".
    #[must_use]
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Self {
            inner: Some(Enabled {
                epoch: Instant::now(),
                sink,
            }),
        }
    }

    /// The no-op tracer: every call is a single branch, no clock reads,
    /// no sink, no formatting.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether events are being recorded. Check this before doing any
    /// work (formatting, counting) that only feeds the tracer.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since the tracer epoch (0 when disabled). Pair with
    /// [`Tracer::complete_span`] to report aggregated intervals.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |t| saturating_ns(t.epoch.elapsed().as_nanos()))
    }

    /// Opens a phase span; the returned guard closes it on drop. Spans
    /// opened while another guard is live are nested inside it (sinks
    /// reconstruct the hierarchy from begin/end order).
    #[must_use = "the span closes when the guard drops — bind it with `let`"]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if let Some(t) = &self.inner {
            t.sink.record(TraceEvent::Begin {
                name,
                ts_ns: saturating_ns(t.epoch.elapsed().as_nanos()),
            });
        }
        SpanGuard { tracer: self, name }
    }

    /// Reports a self-contained `[start_ns, start_ns + dur_ns]` interval
    /// measured by the caller — the hook for hot loops that accumulate
    /// per-phase time in plain integers and emit one aggregate event
    /// after the measured window.
    pub fn complete_span(&self, name: &'static str, start_ns: u64, dur_ns: u64) {
        if let Some(t) = &self.inner {
            t.sink.record(TraceEvent::Complete {
                name,
                start_ns,
                dur_ns,
            });
        }
    }

    /// Reports a named numeric value (counter or gauge).
    pub fn counter(&self, name: &'static str, value: f64) {
        if let Some(t) = &self.inner {
            t.sink.record(TraceEvent::Counter {
                name,
                value,
                ts_ns: saturating_ns(t.epoch.elapsed().as_nanos()),
            });
        }
    }

    /// Reports a warning. Callers format `message` only after checking
    /// [`Tracer::enabled`] so the disabled path stays allocation-free:
    ///
    /// ```
    /// # let tracer = gcr_trace::Tracer::disabled();
    /// # let detail = 7;
    /// if tracer.enabled() {
    ///     tracer.warn("demo.category", &format!("detail: {detail}"));
    /// }
    /// ```
    pub fn warn(&self, name: &'static str, message: &str) {
        if let Some(t) = &self.inner {
            t.sink.record(TraceEvent::Warn {
                name,
                message: message.to_owned(),
                ts_ns: saturating_ns(t.epoch.elapsed().as_nanos()),
            });
        }
    }
}

/// Clamps a 128-bit nanosecond count into the event timestamp width
/// (u64 nanoseconds cover ~584 years of process uptime).
fn saturating_ns(ns: u128) -> u64 {
    u64::try_from(ns).unwrap_or(u64::MAX)
}

/// Guard of an open span; closes it on drop. Returned by
/// [`Tracer::span`].
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    name: &'static str,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(t) = &self.tracer.inner {
            t.sink.record(TraceEvent::End {
                name: self.name,
                ts_ns: saturating_ns(t.epoch.elapsed().as_nanos()),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_and_reads_no_clock() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        assert_eq!(tracer.now_ns(), 0);
        let _span = tracer.span("anything");
        tracer.counter("c", 1.0);
        tracer.warn("w", "msg");
        // Nothing to assert against — the point is that no sink exists
        // and none of the calls panic.
    }

    #[test]
    fn memory_sink_reconstructs_nesting_and_counters() {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::new(sink.clone());
        {
            let _outer = tracer.span("outer");
            tracer.counter("evals", 10.0);
            {
                let _inner = tracer.span("inner");
                tracer.counter("evals", 25.0);
            }
            tracer.complete_span("aggregate", 0, 500);
        }
        assert_eq!(
            sink.nesting().unwrap(),
            vec![("outer", 0), ("inner", 1), ("aggregate", 1)]
        );
        assert_eq!(sink.counter("evals"), Some(25.0));
        assert_eq!(sink.counter("missing"), None);
    }

    #[test]
    fn nesting_reports_imbalance() {
        let sink = MemorySink::new();
        sink.record(TraceEvent::Begin {
            name: "open",
            ts_ns: 0,
        });
        assert!(sink.nesting().unwrap_err().contains("left open"));
        sink.record(TraceEvent::End {
            name: "other",
            ts_ns: 1,
        });
        assert!(sink.nesting().unwrap_err().contains("closes open span"));
    }

    #[test]
    fn warnings_are_captured_by_category() {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::new(sink.clone());
        if tracer.enabled() {
            tracer.warn("greedy.threads", "bad value");
        }
        assert_eq!(sink.warnings("greedy.threads"), vec!["bad value"]);
        assert!(sink.warnings("other").is_empty());
    }

    #[test]
    fn timestamps_are_monotone() {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::new(sink.clone());
        {
            let _a = tracer.span("a");
        }
        {
            let _b = tracer.span("b");
        }
        let ts: Vec<u64> = sink
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::Begin { ts_ns, .. } | TraceEvent::End { ts_ns, .. } => *ts_ns,
                _ => unreachable!(),
            })
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn chrome_export_contains_every_phase_type() {
        let sink = Arc::new(ChromeTraceSink::new());
        let tracer = Tracer::new(sink.clone());
        {
            let _span = tracer.span("phase \"quoted\"");
            tracer.counter("count", 42.0);
            tracer.counter("ratio", 0.125);
            tracer.counter("bad", f64::NAN);
            if tracer.enabled() {
                tracer.warn("warnings", "line1\nline2");
            }
        }
        tracer.complete_span("agg", 1_000, 2_000);
        let json = sink.to_json();
        assert!(json.contains("\"displayTimeUnit\": \"ms\""));
        assert!(json.contains("\"ph\": \"B\"") && json.contains("\"ph\": \"E\""));
        assert!(json.contains("\"ph\": \"X\"") && json.contains("\"dur\": 2.000"));
        assert!(json.contains("\"ph\": \"C\"") && json.contains("\"value\": 42"));
        assert!(json.contains("\"value\": 0.125"));
        assert!(json.contains("\"value\": null"));
        assert!(json.contains("phase \\\"quoted\\\""));
        assert!(json.contains("line1\\nline2"));
        // Balanced braces/brackets as a cheap well-formedness check; the
        // real parse round-trip lives in gcr-bench's tests, next to its
        // JSON reader.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn clones_share_sink_and_epoch() {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::new(sink.clone());
        let clone = tracer.clone();
        {
            let _a = tracer.span("from-original");
            let _b = clone.span("from-clone");
        }
        assert_eq!(
            sink.nesting().unwrap(),
            vec![("from-original", 0), ("from-clone", 1)]
        );
    }
}
