//! Worker-thread resolution shared by every parallel engine in the
//! workspace.
//!
//! The greedy merge engine (`gcr-cts`), the streaming activity scanner
//! (`gcr-activity`) and the routing daemon (`gcrd`) all size their worker
//! pools the same way: an explicit parameter wins, then the `GCR_THREADS`
//! environment variable, then [`std::thread::available_parallelism`],
//! clamped to `1..=`[`MAX_THREADS`]. This module is the single
//! implementation; the crates used to carry near-identical private
//! copies whose warning wording and fallback behavior could drift.
//!
//! An unparsable `GCR_THREADS` is **rejected**, not silently ignored: it
//! reports a warning through the caller's [`Tracer`] (under the caller's
//! own category name, e.g. `greedy.threads` / `activity.threads`) and
//! resolves to 1, so a typo in a CI timing run pins the engine instead
//! of picking up ambient parallelism. Library code never writes to
//! stderr — binaries that want the warning visible echo it from their
//! sink.
//!
//! Long-lived services must not consult the environment per call: the
//! env can change mid-run, and two requests resolving different thread
//! counts would break cross-request determinism of *wall-time* profiles
//! (the committed merges are thread-count-invariant, but reproducible
//! timing matters too). A daemon calls [`resolve`] **once** at startup
//! and threads the resolved count through explicit params
//! (`GreedyParams::threads`, `ScanParams::threads`) from then on — the
//! explicit value always wins, so the per-call env read only happens on
//! CLI entry points that leave the params at `None`.

use crate::Tracer;

/// Hard cap on worker threads (diminishing returns past the memory
/// bandwidth of one socket).
pub const MAX_THREADS: usize = 16;

/// Resolves a worker-thread count from an explicit request and an
/// already-read `GCR_THREADS` value (pass
/// `std::env::var("GCR_THREADS").ok()` — or a captured copy in a
/// long-lived service). Resolution order: `explicit`, then `env`, then
/// [`std::thread::available_parallelism`]; clamped to
/// `1..=`[`MAX_THREADS`].
///
/// An unparsable `env` value resolves to 1 and reports a warning under
/// `warn_name` through `tracer` (only when tracing is enabled — the
/// disabled path allocates nothing).
#[must_use]
pub fn resolve_with_env(
    explicit: Option<usize>,
    env: Option<&str>,
    warn_name: &'static str,
    tracer: &Tracer,
) -> usize {
    explicit
        .or_else(|| {
            let s = env?;
            match s.trim().parse() {
                Ok(n) => Some(n),
                Err(_) => {
                    if tracer.enabled() {
                        tracer.warn(
                            warn_name,
                            &format!("unparsable GCR_THREADS value {s:?}; running single-threaded"),
                        );
                    }
                    Some(1)
                }
            }
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
        .clamp(1, MAX_THREADS)
}

/// [`resolve_with_env`] reading `GCR_THREADS` from the process
/// environment — the CLI entry-point variant. Reading the environment
/// allocates; call once per run (or once per process for services) and
/// pass the result through explicit params.
#[must_use]
pub fn resolve(explicit: Option<usize>, warn_name: &'static str, tracer: &Tracer) -> usize {
    let env = std::env::var("GCR_THREADS").ok();
    resolve_with_env(explicit, env.as_deref(), warn_name, tracer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySink;
    use std::sync::Arc;

    #[test]
    fn explicit_wins_over_env() {
        let t = Tracer::disabled();
        assert_eq!(resolve_with_env(Some(3), Some("8"), "t.threads", &t), 3);
    }

    #[test]
    fn env_parses_and_clamps() {
        let t = Tracer::disabled();
        assert_eq!(resolve_with_env(None, Some("4"), "t.threads", &t), 4);
        assert_eq!(resolve_with_env(None, Some(" 2 "), "t.threads", &t), 2);
        assert_eq!(resolve_with_env(None, Some("0"), "t.threads", &t), 1);
        assert_eq!(
            resolve_with_env(None, Some("999"), "t.threads", &t),
            MAX_THREADS
        );
    }

    #[test]
    fn explicit_clamps_too() {
        let t = Tracer::disabled();
        assert_eq!(resolve_with_env(Some(0), None, "t.threads", &t), 1);
        assert_eq!(
            resolve_with_env(Some(64), None, "t.threads", &t),
            MAX_THREADS
        );
    }

    #[test]
    fn unparsable_env_pins_to_one_and_warns() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::new(sink.clone());
        assert_eq!(resolve_with_env(None, Some("bogus"), "t.threads", &t), 1);
        let warnings = sink.warnings("t.threads");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("\"bogus\""));
    }

    #[test]
    fn missing_env_uses_available_parallelism() {
        let t = Tracer::disabled();
        let n = resolve_with_env(None, None, "t.threads", &t);
        assert!((1..=MAX_THREADS).contains(&n));
    }
}
