//! Offline drop-in replacement for the subset of `criterion` the bench
//! targets use. The build container has no crates.io access, so the
//! workspace points its `criterion` dev-dependency at this crate.
//!
//! It is a smoke-run harness, not a statistics engine: every registered
//! benchmark body executes a handful of iterations and the wall-clock
//! time is printed. That keeps `cargo bench` (and `cargo clippy
//! --all-targets`) compiling and the bench bodies exercised, while real
//! measurements wait for a networked environment with upstream criterion.
// Vendored stand-in for a crates.io dependency: it mirrors the upstream
// crate's public names and casts, so the workspace lint policy for our
// own code does not apply.
#![allow(missing_docs, clippy::cast_lossless, clippy::must_use_candidate)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

const STUB_ITERS: u32 = 3;

/// Mirror of `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _sample_size: Option<usize>,
}

impl Criterion {
    /// Upstream tunable; recorded but otherwise ignored by the stub.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self._sample_size = Some(n);
        self
    }

    /// Runs `f` a few times and prints the mean wall-clock time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(id, &mut f);
        self
    }

    /// Mirror of `criterion::Criterion::benchmark_group`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let mut wrapped = |b: &mut Bencher<'_>| f(b, input);
        run_one(&label, &mut wrapped);
        self
    }

    pub fn finish(self) {}
}

/// Mirror of `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    #[must_use]
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Mirror of `criterion::Bencher`: `iter` runs the routine.
pub struct Bencher<'a> {
    iters: u32,
    total_ns: u128,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.total_ns += start.elapsed().as_nanos();
        }
    }
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(id: &str, f: &mut F) {
    let mut b = Bencher {
        iters: STUB_ITERS,
        total_ns: 0,
        _marker: std::marker::PhantomData,
    };
    f(&mut b);
    let mean_ns = b.total_ns / u128::from(b.iters.max(1));
    println!(
        "bench {id:<40} ~{:>12.3} µs/iter (criterion stub)",
        mean_ns as f64 / 1e3
    );
}

/// Mirror of `criterion_group!`: builds a function running each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            $(
                let mut c = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_body() {
        let mut c = Criterion::default().sample_size(10);
        let mut hits = 0u32;
        c.bench_function("smoke", |b| b.iter(|| hits += 1));
        assert_eq!(hits, STUB_ITERS);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, n| {
            b.iter(|| *n * 2);
        });
        g.finish();
    }
}
