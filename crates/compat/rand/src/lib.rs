//! Offline drop-in replacement for the subset of `rand` 0.8 this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`
//! and `Rng::gen_bool`.
//!
//! The build container has no crates.io access, so the workspace points
//! its `rand` dependency at this crate. The generator is `SplitMix64` —
//! deterministic, seedable and statistically fine for the synthetic
//! workload generation and tests that use it, but **not** the same
//! sequence as upstream `StdRng` and not cryptographically secure.
// Vendored stand-in for a crates.io dependency: it mirrors the upstream
// crate's public names and casts, so the workspace lint policy for our
// own code does not apply.
#![allow(missing_docs, clippy::cast_lossless, clippy::must_use_candidate)]
#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard(word: u64) -> Self;
}

impl Standard for f64 {
    fn sample_standard(word: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard(word: u64) -> Self {
        word & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard(word: u64) -> Self {
        (word >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample_standard(word: u64) -> Self {
        word
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng.next_u64());
        self.start + (self.end - self.start) * u
    }
}

/// Object-safe raw word source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample over the value domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self.next_u64())
    }

    /// A uniform sample from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic `SplitMix64` generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
