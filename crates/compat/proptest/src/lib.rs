//! Offline drop-in replacement for the subset of `proptest` this
//! workspace's property tests use.
//!
//! The build container has no crates.io access, so the workspace points
//! its `proptest` dev-dependency at this crate. It keeps the same
//! surface — `proptest!`, `Strategy`/`prop_map`, range and tuple and
//! `collection::vec` strategies, `any::<T>()`, `prop_assert*!`,
//! `prop_assume!`, `prop_oneof!`, `ProptestConfig::with_cases` — but
//! generates cases with a plain seeded `SplitMix64` stream and does **no
//! shrinking**: a failure reports the case number and message only.
//! Each test function runs its cases from a fixed seed, so failures are
//! reproducible run-to-run.
// Vendored stand-in for a crates.io dependency: it mirrors the upstream
// crate's public names and casts, so the workspace lint policy for our
// own code does not apply.
#![allow(missing_docs, clippy::cast_lossless, clippy::must_use_candidate)]
#![forbid(unsafe_code)]

use std::ops::Range;

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (the prelude's
    /// `ProptestConfig`): only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; keep the stub quick but thorough.
            Config { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// `prop_assert*!` failed; the whole test fails.
        Fail(String),
    }

    /// Deterministic `SplitMix64` case generator.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        #[must_use]
        pub fn seeded(seed: u64) -> Self {
            TestRng { state: seed }
        }

        #[allow(clippy::should_implement_trait)]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform index in `0..n` (`n > 0`).
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot pick from an empty range");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree and no shrinking: a
    /// strategy is just a seeded generator.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (upstream `BoxedStrategy`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::boxed`].
    pub struct BoxedStrategy<T> {
        inner: Box<dyn DynStrategy<T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.dyn_generate(rng)
        }
    }

    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Uniform choice between same-valued strategies — the engine behind
    /// `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.options.len());
            self.options[i].generate(rng)
        }
    }
}

use strategy::Strategy;
use test_runner::TestRng;

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy (upstream `Arbitrary`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// The full-domain strategy for `T` — `any::<bool>()` etc.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain generator behind [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyOf<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_word {
    ($($t:ty => $conv:expr),* $(,)?) => {$(
        impl Strategy for AnyOf<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let word = rng.next_u64();
                let f: fn(u64) -> $t = $conv;
                f(word)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyOf(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_word! {
    bool => |w| w & 1 == 1,
    u8 => |w| w as u8,
    u16 => |w| w as u16,
    u32 => |w| (w >> 32) as u32,
    u64 => |w| w,
    usize => |w| w as usize,
    i32 => |w| (w >> 32) as i32,
    i64 => |w| w as i64,
}

impl Strategy for AnyOf<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced, spanning several decades — useful values
        // rather than raw bit soup (upstream biases similarly).
        let mag = 10f64.powf(rng.unit_f64() * 12.0 - 6.0);
        if rng.next_u64() & 1 == 1 {
            mag
        } else {
            -mag
        }
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyOf<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyOf(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed size or a
    /// half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.index(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of the upstream prelude's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Fails the current case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The test-definition macro. Supports the subset this workspace uses:
/// an optional `#![proptest_config(...)]` header and `fn name(pat in
/// strategy, ...) { body }` items carrying arbitrary attributes
/// (typically `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config = $config;
            // Stable per-test seed: reproducible across runs and
            // independent of test execution order.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for byte in concat!(module_path!(), "::", stringify!($name)).bytes() {
                seed = (seed ^ u64::from(byte)).wrapping_mul(0x1000_0000_01b3);
            }
            let mut rng = $crate::test_runner::TestRng::seeded(seed);
            let mut ran = 0u32;
            let mut attempts = 0u32;
            while ran < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(20).max(1000),
                    "proptest stub: too many rejected cases in {}",
                    stringify!($name)
                );
                $(let $arg = ($strategy).generate(&mut rng);)+
                let case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                match case() {
                    ::std::result::Result::Ok(()) => ran += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest stub: {} failed at case {} (seed {:#x}): {}",
                            stringify!($name),
                            ran,
                            seed,
                            msg
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0..5.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..5.0).contains(&f));
        }

        #[test]
        fn maps_and_tuples_compose(p in (0.0..1.0f64, 1usize..4).prop_map(|(a, n)| a * n as f64)) {
            prop_assert!((0.0..4.0).contains(&p));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<bool>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn oneof_picks_from_both_arms(x in prop_oneof![0.0..1.0f64, 10.0..11.0f64]) {
            prop_assert!((0.0..1.0).contains(&x) || (10.0..11.0).contains(&x));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_assertion_panics() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
