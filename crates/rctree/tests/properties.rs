//! Property-based tests for the Elmore delay engine.

use gcr_rctree::{Device, NodeId, RcTree};
use proptest::prelude::*;

fn src() -> Device {
    Device::new(0.1, 50.0, 0.0, 0.0)
}

/// A random tree shape: for each node after the first, the index of its
/// parent among previously created nodes, plus its wire RC and load.
#[derive(Debug, Clone)]
struct RandomTree {
    specs: Vec<(usize, f64, f64, f64)>,
}

fn random_tree(max_nodes: usize) -> impl Strategy<Value = RandomTree> {
    prop::collection::vec(
        (0usize..1000, 0.1..50.0f64, 0.001..1.0f64, 0.0..0.5f64),
        1..max_nodes,
    )
    .prop_map(|raw| RandomTree {
        specs: raw
            .into_iter()
            .enumerate()
            .map(|(i, (p, r, c, l))| (p % (i + 1), r, c, l))
            .collect(),
    })
}

fn build(spec: &RandomTree) -> (RcTree, Vec<NodeId>) {
    let mut t = RcTree::new(src());
    let mut ids = vec![t.root()];
    for &(p, r, c, l) in &spec.specs {
        let id = t.add_node(ids[p], r, c);
        t.set_load(id, l);
        ids.push(id);
    }
    (t, ids)
}

proptest! {
    /// Arrival times are monotone along every root-to-node path: signal
    /// cannot arrive earlier downstream.
    #[test]
    fn arrival_monotone_along_paths(spec in random_tree(40)) {
        let (t, ids) = build(&spec);
        let an = t.analyze();
        for &id in &ids {
            if let Some(p) = t.parent(id) {
                prop_assert!(an.arrival(id) >= an.arrival(p) - 1e-12,
                    "child {id} at {} before parent {p} at {}",
                    an.arrival(id), an.arrival(p));
            }
        }
    }

    /// Adding load anywhere never decreases any arrival time (Elmore is
    /// monotone in capacitance).
    #[test]
    fn arrival_monotone_in_load(spec in random_tree(30), extra in 0.01..1.0f64, which in 0usize..30) {
        let (t, ids) = build(&spec);
        let target = ids[which % ids.len()];
        let before = t.analyze();
        let mut t2 = t.clone();
        t2.set_load(target, extra + 1.0); // strictly larger than any default load
        let after = t2.analyze();
        for &id in &ids {
            prop_assert!(after.arrival(id) + 1e-12 >= before.arrival(id));
        }
    }

    /// Inserting a device at a node strictly reduces the capacitance seen
    /// upstream (to C_g) and therefore cannot slow any node outside the
    /// device's subtree.
    #[test]
    fn device_never_slows_upstream(spec in random_tree(30), which in 1usize..30) {
        let (t, ids) = build(&spec);
        prop_assume!(ids.len() > 1);
        let target = ids[1 + (which % (ids.len() - 1))];
        let before = t.analyze();
        prop_assume!(before.cap_seen(target) > 0.04); // gate must actually decouple
        let mut t2 = t.clone();
        t2.set_device(target, Device::new(0.04, 250.0, 40.0, 0.0));
        let after = t2.analyze();
        // Nodes outside the target's subtree: arrival must not increase.
        let mut in_subtree = vec![false; ids.len()];
        in_subtree[target.index()] = true;
        for &id in &ids {
            if let Some(p) = t.parent(id) {
                if in_subtree[p.index()] {
                    in_subtree[id.index()] = true;
                }
            }
        }
        for &id in &ids {
            if !in_subtree[id.index()] {
                prop_assert!(after.arrival(id) <= before.arrival(id) + 1e-12,
                    "node {id} slowed from {} to {}", before.arrival(id), after.arrival(id));
            }
        }
        // The node itself arrives no later than before.
        prop_assert!(after.arrival(target) <= before.arrival(target) + 1e-12);
    }

    /// Two mirror-image subtrees hung off the root arrive simultaneously.
    #[test]
    fn mirrored_subtrees_have_zero_skew(spec in random_tree(15)) {
        let mut t = RcTree::new(src());
        let left = t.add_node(t.root(), 3.0, 0.2);
        let right = t.add_node(t.root(), 3.0, 0.2);
        let mut sinks = Vec::new();
        for side in [left, right] {
            let mut map = vec![side];
            for &(p, r, c, l) in &spec.specs {
                let id = t.add_node(map[p % map.len()], r, c);
                t.set_load(id, l);
                map.push(id);
            }
            sinks.push(*map.last().unwrap());
        }
        let an = t.analyze();
        let skew = (an.arrival(sinks[0]) - an.arrival(sinks[1])).abs();
        let scale = an.arrival(sinks[0]).abs().max(1.0);
        prop_assert!(skew <= 1e-9 * scale, "mirror skew {skew}");
    }
}
