use std::fmt;

/// A buffering device inserted in the clock tree: an AND masking gate, a
/// plain buffer, or the root driver.
///
/// The electrical model is the standard switch-level abstraction used with
/// the Elmore delay: a fixed input capacitance presented upstream, an
/// intrinsic delay, and a linear output resistance driving the downstream
/// RC load. Area is carried along for the paper's area comparisons.
///
/// Sizing follows the usual linear scaling: a device of size `s` has
/// `s×` input capacitance and area and `1/s×` output resistance — the paper
/// assumes "the size of a buffer is half the size of AND-gates":
///
/// ```
/// use gcr_rctree::Device;
///
/// let and_gate = Device::new(0.04, 250.0, 40.0, 1000.0);
/// let buffer = and_gate.scaled(0.5);
/// assert_eq!(buffer.input_cap(), 0.02);
/// assert_eq!(buffer.output_res(), 500.0);
/// assert_eq!(buffer.area(), 500.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Device {
    input_cap: f64,
    output_res: f64,
    intrinsic_delay: f64,
    area: f64,
}

impl Device {
    /// Creates a device model.
    ///
    /// * `input_cap` — gate input capacitance in pF.
    /// * `output_res` — linearized driver resistance in Ω.
    /// * `intrinsic_delay` — unloaded delay in ps.
    /// * `area` — layout area in λ².
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative or non-finite, or if
    /// `output_res` is zero (a zero-resistance driver breaks the Elmore
    /// model's stage decomposition).
    #[must_use]
    pub fn new(input_cap: f64, output_res: f64, intrinsic_delay: f64, area: f64) -> Self {
        for (name, v) in [
            ("input_cap", input_cap),
            ("output_res", output_res),
            ("intrinsic_delay", intrinsic_delay),
            ("area", area),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "device {name} must be finite and >= 0, got {v}"
            );
        }
        assert!(output_res > 0.0, "device output_res must be > 0");
        Self {
            input_cap,
            output_res,
            intrinsic_delay,
            area,
        }
    }

    /// Input capacitance in pF (the paper's `C_g`).
    #[must_use]
    pub fn input_cap(&self) -> f64 {
        self.input_cap
    }

    /// Output resistance in Ω.
    #[must_use]
    pub fn output_res(&self) -> f64 {
        self.output_res
    }

    /// Intrinsic (unloaded) delay in ps.
    #[must_use]
    pub fn intrinsic_delay(&self) -> f64 {
        self.intrinsic_delay
    }

    /// Layout area in λ².
    #[must_use]
    pub fn area(&self) -> f64 {
        self.area
    }

    /// The delay through the device when driving `load` pF downstream:
    /// `intrinsic + R_out · load`.
    #[must_use]
    pub fn stage_delay(&self, load: f64) -> f64 {
        self.intrinsic_delay + self.output_res * load
    }

    /// A linearly resized copy: input capacitance and area scale by
    /// `factor`, output resistance by `1 / factor`; intrinsic delay is
    /// first-order size-independent.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "device scale factor must be > 0, got {factor}"
        );
        Self {
            input_cap: self.input_cap * factor,
            output_res: self.output_res / factor,
            intrinsic_delay: self.intrinsic_delay,
            area: self.area * factor,
        }
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Device{{Cin={}pF, Rout={}Ω, d0={}ps, A={}λ²}}",
            self.input_cap, self.output_res, self.intrinsic_delay, self.area
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_delay_is_affine_in_load() {
        let d = Device::new(0.04, 250.0, 40.0, 1000.0);
        assert_eq!(d.stage_delay(0.0), 40.0);
        assert_eq!(d.stage_delay(1.0), 290.0);
        assert_eq!(d.stage_delay(2.0) - d.stage_delay(1.0), 250.0);
    }

    #[test]
    fn scaling_preserves_rc_product() {
        let d = Device::new(0.04, 250.0, 40.0, 1000.0);
        let s = d.scaled(3.0);
        let rc = d.input_cap() * d.output_res();
        assert!((s.input_cap() * s.output_res() - rc).abs() < 1e-12);
        assert_eq!(s.intrinsic_delay(), d.intrinsic_delay());
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_rejected() {
        let _ = Device::new(0.04, 250.0, 40.0, 1000.0).scaled(0.0);
    }

    #[test]
    #[should_panic(expected = "output_res")]
    fn zero_resistance_rejected() {
        let _ = Device::new(0.04, 0.0, 40.0, 1000.0);
    }

    #[test]
    #[should_panic(expected = "input_cap")]
    fn negative_cap_rejected() {
        let _ = Device::new(-0.04, 250.0, 40.0, 1000.0);
    }

    #[test]
    fn display_is_nonempty() {
        let d = Device::new(0.04, 250.0, 40.0, 1000.0);
        assert!(format!("{d}").contains("pF"));
    }
}
