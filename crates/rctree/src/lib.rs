//! Technology parameters, device models, and Elmore delay analysis for
//! clock trees.
//!
//! The paper evaluates everything in terms of two physical quantities:
//!
//! * **switched capacitance** (pF) — the exact power measure once supply
//!   voltage and clock frequency are fixed, `P = C_sw · f · V_dd²`, and
//! * **phase delay / skew** under the **Elmore delay model** (Tsay's exact
//!   zero-skew formulation).
//!
//! This crate supplies the shared physical substrate:
//!
//! * [`Technology`] — unit wire RC, device models, source driver, supply —
//!   with a validated builder and documented 1998-class defaults.
//! * [`Device`] — an AND masking gate or buffer: input capacitance, output
//!   resistance, intrinsic delay, area; buffers are derived by
//!   [`Device::scaled`] (the paper sizes buffers at half the AND gate).
//! * [`RcTree`] — a generic RC tree with optional buffering devices at
//!   internal nodes and an exact Elmore [`RcTree::analyze`] pass. Devices
//!   *decouple* their subtree: upstream sees only the device input
//!   capacitance — exactly how "inserting gates reduces the subtree
//!   capacitance in the Elmore delay computation".
//!
//! The clock-tree synthesis crates build trees incrementally with their own
//! cached delay state; `RcTree` is the independent from-scratch oracle that
//! integration tests verify those caches against.
//!
//! # Units
//!
//! | quantity | unit |
//! |---|---|
//! | length | layout units (λ) |
//! | capacitance | pF |
//! | resistance | Ω |
//! | delay | ps (Ω × pF = ps) |
//! | area | λ² |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod device;
mod spice;
mod technology;
mod tree;

pub use analysis::DelayAnalysis;
pub use device::Device;
pub use spice::to_spice;
pub use technology::{Technology, TechnologyBuilder, TechnologyError};
pub use tree::{NodeId, RcTree};
