use std::error::Error;
use std::fmt;

use crate::Device;

/// Process and environment parameters shared by every routing algorithm.
///
/// The paper does not tabulate its process constants; the defaults here are
/// calibrated to a mid-1990s 0.35 µm-class process with λ-denominated
/// layout units (see `DESIGN.md` §2 and `EXPERIMENTS.md`), and every
/// constant can be overridden through [`Technology::builder`].
///
/// ```
/// use gcr_rctree::Technology;
///
/// let tech = Technology::builder()
///     .unit_res(0.02)
///     .unit_cap(6e-5)
///     .build()?;
/// assert_eq!(tech.unit_res(), 0.02);
/// // Buffers default to half the AND-gate size (§5.1 of the paper).
/// assert_eq!(tech.buffer().input_cap(), tech.and_gate().input_cap() / 2.0);
/// # Ok::<(), gcr_rctree::TechnologyError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Technology {
    unit_res: f64,
    unit_cap: f64,
    wire_width: f64,
    control_unit_cap: f64,
    control_wire_width: f64,
    and_gate: Device,
    buffer: Device,
    source: Device,
    supply_v: f64,
    clock_mhz: f64,
}

impl Technology {
    /// Starts building a technology from the documented defaults.
    #[must_use]
    pub fn builder() -> TechnologyBuilder {
        TechnologyBuilder::new()
    }

    /// A 0.5 µm-class preset (5 V, 100 MHz): fatter wires (lower R/λ),
    /// larger and slower gates.
    ///
    /// # Panics
    ///
    /// Never panics; the preset constants are valid.
    #[must_use]
    #[expect(
        clippy::expect_used,
        reason = "the preset constants are statically valid"
    )]
    pub fn half_micron() -> Self {
        Technology::builder()
            .unit_res(0.008)
            .unit_cap(8e-5)
            .control_unit_cap(3.2e-5)
            .and_gate(Device::new(0.03, 300.0, 60.0, 1_600.0))
            .source(Device::new(0.15, 30.0, 0.0, 6_000.0))
            .supply_v(5.0)
            .clock_mhz(100.0)
            .build()
            .expect("preset constants are valid")
    }

    /// The default 0.35 µm-class preset (3.3 V, 200 MHz); identical to
    /// [`Technology::default`].
    #[must_use]
    pub fn three_fifty_nm() -> Self {
        Technology::default()
    }

    /// A 0.25 µm-class preset (2.5 V, 400 MHz): thinner, more resistive
    /// wires and smaller, faster gates.
    ///
    /// # Panics
    ///
    /// Never panics; the preset constants are valid.
    #[must_use]
    #[expect(
        clippy::expect_used,
        reason = "the preset constants are statically valid"
    )]
    pub fn quarter_micron() -> Self {
        Technology::builder()
            .unit_res(0.03)
            .unit_cap(1.2e-4)
            .control_unit_cap(4.8e-5)
            .and_gate(Device::new(0.008, 500.0, 18.0, 450.0))
            .source(Device::new(0.06, 20.0, 0.0, 2_500.0))
            .supply_v(2.5)
            .clock_mhz(400.0)
            .build()
            .expect("preset constants are valid")
    }

    /// Unit wire resistance in Ω per layout unit.
    #[must_use]
    pub fn unit_res(&self) -> f64 {
        self.unit_res
    }

    /// Unit wire capacitance in pF per layout unit (the paper's `c`).
    #[must_use]
    pub fn unit_cap(&self) -> f64 {
        self.unit_cap
    }

    /// Routed wire width in λ, used for wiring-area accounting.
    #[must_use]
    pub fn wire_width(&self) -> f64 {
        self.wire_width
    }

    /// Unit capacitance of an enable (control) wire in pF per layout unit.
    ///
    /// Clock trunks are wide and shielded; the controller's enable signals
    /// are ordinary min-width signal wires with a fraction of the
    /// capacitance per unit length.
    #[must_use]
    pub fn control_unit_cap(&self) -> f64 {
        self.control_unit_cap
    }

    /// Width of an enable (control) wire in λ.
    #[must_use]
    pub fn control_wire_width(&self) -> f64 {
        self.control_wire_width
    }

    /// Capacitance of a control wire of `length` layout units.
    #[must_use]
    pub fn control_wire_cap(&self, length: f64) -> f64 {
        self.control_unit_cap * length
    }

    /// Area of a control wire of `length` layout units.
    #[must_use]
    pub fn control_wire_area(&self, length: f64) -> f64 {
        self.control_wire_width * length
    }

    /// The AND masking gate inserted at gated internal nodes.
    #[must_use]
    pub fn and_gate(&self) -> Device {
        self.and_gate
    }

    /// The buffer used by the buffered-tree baseline (default: the AND gate
    /// scaled to half size).
    #[must_use]
    pub fn buffer(&self) -> Device {
        self.buffer
    }

    /// The clock source driver at the tree root.
    #[must_use]
    pub fn source(&self) -> Device {
        self.source
    }

    /// Supply voltage in volts.
    #[must_use]
    pub fn supply_v(&self) -> f64 {
        self.supply_v
    }

    /// Clock frequency in MHz.
    #[must_use]
    pub fn clock_mhz(&self) -> f64 {
        self.clock_mhz
    }

    /// Resistance of a wire of `length` layout units.
    #[must_use]
    pub fn wire_res(&self, length: f64) -> f64 {
        self.unit_res * length
    }

    /// Capacitance of a wire of `length` layout units.
    #[must_use]
    pub fn wire_cap(&self, length: f64) -> f64 {
        self.unit_cap * length
    }

    /// Area of a wire of `length` layout units.
    #[must_use]
    pub fn wire_area(&self, length: f64) -> f64 {
        self.wire_width * length
    }

    /// Converts a switched capacitance (pF, already weighted by switching
    /// probability per cycle) into dissipated power in µW:
    /// `P = C_sw · f · V_dd²` — Equation (1) of the paper with the
    /// probability folded into `C_sw`.
    #[must_use]
    pub fn power_uw(&self, switched_cap_pf: f64) -> f64 {
        switched_cap_pf * self.clock_mhz * self.supply_v * self.supply_v
    }
}

impl Default for Technology {
    #[expect(
        clippy::expect_used,
        reason = "the documented default parameters are statically valid"
    )]
    fn default() -> Self {
        TechnologyBuilder::new()
            .build()
            .expect("default technology parameters are valid")
    }
}

/// Builder for [`Technology`], validating every parameter on
/// [`TechnologyBuilder::build`].
#[derive(Clone, Debug)]
pub struct TechnologyBuilder {
    unit_res: f64,
    unit_cap: f64,
    wire_width: f64,
    control_unit_cap: f64,
    control_wire_width: f64,
    and_gate: Device,
    buffer: Option<Device>,
    source: Device,
    supply_v: f64,
    clock_mhz: f64,
}

impl TechnologyBuilder {
    /// Creates a builder populated with the documented defaults:
    ///
    /// | parameter | default | rationale |
    /// |---|---|---|
    /// | `unit_res` | 0.015 Ω/λ | 0.35 µm metal-3 class sheet resistance |
    /// | `unit_cap` | 1 × 10⁻⁴ pF/λ | ≈ 0.5 fF/µm for wide shielded clock wire at λ ≈ 0.2 µm |
    /// | `wire_width` | 1.5 λ | wide clock trunk pitch share |
    /// | `control_unit_cap` | 4 × 10⁻⁵ pF/λ | min-width signal wire (≈ 0.2 fF/µm) |
    /// | `control_wire_width` | 1.0 λ | min-width enable wire |
    /// | `and_gate` | 0.015 pF, 400 Ω, 30 ps, 800 λ² | mask gate: pin cap ≪ typical edge wire cap |
    /// | `buffer` | AND gate scaled × 0.5 | §5.1: "half the size of AND-gates" |
    /// | `source` | 0.1 pF, 25 Ω, 0 ps, 4000 λ² | pad driver |
    /// | `supply_v` | 3.3 V | 0.35 µm supply |
    /// | `clock_mhz` | 200 MHz | period comfortably above tree delay |
    #[must_use]
    pub fn new() -> Self {
        let and_gate = Device::new(0.015, 400.0, 30.0, 800.0);
        Self {
            unit_res: 0.015,
            unit_cap: 1e-4,
            wire_width: 1.5,
            control_unit_cap: 4e-5,
            control_wire_width: 1.0,
            and_gate,
            buffer: None,
            source: Device::new(0.1, 25.0, 0.0, 4000.0),
            supply_v: 3.3,
            clock_mhz: 200.0,
        }
    }

    /// Sets unit wire resistance (Ω/λ).
    #[must_use]
    pub fn unit_res(mut self, v: f64) -> Self {
        self.unit_res = v;
        self
    }

    /// Sets unit wire capacitance (pF/λ).
    #[must_use]
    pub fn unit_cap(mut self, v: f64) -> Self {
        self.unit_cap = v;
        self
    }

    /// Sets routed clock wire width (λ).
    #[must_use]
    pub fn wire_width(mut self, v: f64) -> Self {
        self.wire_width = v;
        self
    }

    /// Sets control (enable) wire unit capacitance (pF/λ).
    #[must_use]
    pub fn control_unit_cap(mut self, v: f64) -> Self {
        self.control_unit_cap = v;
        self
    }

    /// Sets control (enable) wire width (λ).
    #[must_use]
    pub fn control_wire_width(mut self, v: f64) -> Self {
        self.control_wire_width = v;
        self
    }

    /// Sets the AND masking gate model. Unless [`Self::buffer`] is also
    /// called, the buffer is re-derived as this gate scaled by 0.5.
    #[must_use]
    pub fn and_gate(mut self, d: Device) -> Self {
        self.and_gate = d;
        self
    }

    /// Overrides the buffer model (default: AND gate scaled by 0.5).
    #[must_use]
    pub fn buffer(mut self, d: Device) -> Self {
        self.buffer = Some(d);
        self
    }

    /// Sets the clock source driver at the root.
    #[must_use]
    pub fn source(mut self, d: Device) -> Self {
        self.source = d;
        self
    }

    /// Sets the supply voltage (V).
    #[must_use]
    pub fn supply_v(mut self, v: f64) -> Self {
        self.supply_v = v;
        self
    }

    /// Sets the clock frequency (MHz).
    #[must_use]
    pub fn clock_mhz(mut self, v: f64) -> Self {
        self.clock_mhz = v;
        self
    }

    /// Validates the parameters and produces a [`Technology`].
    ///
    /// # Errors
    ///
    /// Returns [`TechnologyError`] when any scalar parameter is
    /// non-positive or non-finite.
    pub fn build(self) -> Result<Technology, TechnologyError> {
        for (name, v) in [
            ("unit_res", self.unit_res),
            ("unit_cap", self.unit_cap),
            ("wire_width", self.wire_width),
            ("control_unit_cap", self.control_unit_cap),
            ("control_wire_width", self.control_wire_width),
            ("supply_v", self.supply_v),
            ("clock_mhz", self.clock_mhz),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(TechnologyError::InvalidParameter { name, value: v });
            }
        }
        let buffer = self.buffer.unwrap_or_else(|| self.and_gate.scaled(0.5));
        Ok(Technology {
            unit_res: self.unit_res,
            unit_cap: self.unit_cap,
            wire_width: self.wire_width,
            control_unit_cap: self.control_unit_cap,
            control_wire_width: self.control_wire_width,
            and_gate: self.and_gate,
            buffer,
            source: self.source,
            supply_v: self.supply_v,
            clock_mhz: self.clock_mhz,
        })
    }
}

impl Default for TechnologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Error produced when building a [`Technology`] from invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TechnologyError {
    /// A scalar parameter was non-positive or non-finite.
    InvalidParameter {
        /// Which builder field was rejected.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for TechnologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechnologyError::InvalidParameter { name, value } => {
                write!(
                    f,
                    "technology parameter `{name}` must be finite and > 0, got {value}"
                )
            }
        }
    }
}

impl Error for TechnologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_buffer_is_half_gate() {
        let t = Technology::default();
        assert_eq!(t.buffer().input_cap(), t.and_gate().input_cap() / 2.0);
        assert_eq!(t.buffer().area(), t.and_gate().area() / 2.0);
        assert_eq!(t.buffer().output_res(), t.and_gate().output_res() * 2.0);
    }

    #[test]
    fn wire_helpers_scale_linearly() {
        let t = Technology::default();
        assert!((t.wire_cap(1000.0) - 1000.0 * t.unit_cap()).abs() < 1e-15);
        assert!((t.wire_res(1000.0) - 1000.0 * t.unit_res()).abs() < 1e-12);
        assert_eq!(t.wire_area(100.0), 150.0);
        // Control wires are narrower and lighter than clock trunks.
        assert!(t.control_unit_cap() < t.unit_cap());
        assert!(t.control_wire_width() < t.wire_width());
        assert_eq!(t.control_wire_area(100.0), 100.0);
        assert!((t.control_wire_cap(1000.0) - 1000.0 * t.control_unit_cap()).abs() < 1e-15);
    }

    #[test]
    fn explicit_buffer_is_respected() {
        let b = Device::new(0.01, 900.0, 20.0, 300.0);
        let t = Technology::builder().buffer(b).build().unwrap();
        assert_eq!(t.buffer(), b);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        for (res, cap) in [(0.0, 5e-5), (-1.0, 5e-5), (0.015, f64::NAN)] {
            let r = Technology::builder().unit_res(res).unit_cap(cap).build();
            assert!(r.is_err(), "res={res} cap={cap} should be rejected");
        }
        let err = Technology::builder().unit_res(0.0).build().unwrap_err();
        assert!(err.to_string().contains("unit_res"));
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let half = Technology::half_micron();
        let def = Technology::three_fifty_nm();
        let quarter = Technology::quarter_micron();
        // Wires get more resistive as features shrink…
        assert!(half.unit_res() < def.unit_res());
        assert!(def.unit_res() < quarter.unit_res());
        // …gates get smaller and faster…
        assert!(half.and_gate().input_cap() > quarter.and_gate().input_cap());
        assert!(half.and_gate().intrinsic_delay() > quarter.and_gate().intrinsic_delay());
        // …and supply drops while frequency rises.
        assert!(half.supply_v() > quarter.supply_v());
        assert!(half.clock_mhz() < quarter.clock_mhz());
    }

    #[test]
    fn power_conversion_units() {
        // 10 pF switched at 200 MHz under 3.3 V: 10e-12 * 200e6 * 10.89 W.
        let t = Technology::default();
        let p = t.power_uw(10.0);
        assert!((p - 10.0 * 200.0 * 3.3 * 3.3).abs() < 1e-9);
        assert!((p - 21780.0).abs() < 1e-6); // ≈ 21.8 mW
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<TechnologyError>();
    }
}
