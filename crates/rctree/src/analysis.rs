use crate::NodeId;

/// Result of an Elmore delay pass over an [`RcTree`](crate::RcTree).
///
/// Stores, per node: the signal arrival time at the node's input (ps), the
/// capacitance the node presents to the wire above it, and the capacitance
/// driven at the node's output point. Skew queries operate over any chosen
/// set of nodes (normally the sinks).
#[derive(Clone, Debug)]
pub struct DelayAnalysis {
    arrival: Vec<f64>,
    cap_seen: Vec<f64>,
    cap_at_output: Vec<f64>,
}

impl DelayAnalysis {
    pub(crate) fn new(arrival: Vec<f64>, cap_seen: Vec<f64>, cap_at_output: Vec<f64>) -> Self {
        Self {
            arrival,
            cap_seen,
            cap_at_output,
        }
    }

    /// Arrival time (ps) at the input of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the analyzed tree.
    #[must_use]
    pub fn arrival(&self, node: NodeId) -> f64 {
        self.arrival[node.index()]
    }

    /// Capacitance (pF) the node presents to its parent wire: the device
    /// input capacitance when the node is buffered, the full downstream
    /// capacitance otherwise.
    #[must_use]
    pub fn cap_seen(&self, node: NodeId) -> f64 {
        self.cap_seen[node.index()]
    }

    /// Capacitance (pF) driven at the node's output point (children wires
    /// plus decoupled loads).
    #[must_use]
    pub fn cap_at_output(&self, node: NodeId) -> f64 {
        self.cap_at_output[node.index()]
    }

    /// Largest arrival among `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    #[must_use]
    pub fn max_arrival(&self, nodes: &[NodeId]) -> f64 {
        assert!(!nodes.is_empty(), "max_arrival over an empty node set");
        nodes
            .iter()
            .map(|&n| self.arrival(n))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest arrival among `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    #[must_use]
    pub fn min_arrival(&self, nodes: &[NodeId]) -> f64 {
        assert!(!nodes.is_empty(), "min_arrival over an empty node set");
        nodes
            .iter()
            .map(|&n| self.arrival(n))
            .fold(f64::INFINITY, f64::min)
    }

    /// Skew across `nodes`: `max_arrival − min_arrival`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    #[must_use]
    pub fn skew(&self, nodes: &[NodeId]) -> f64 {
        self.max_arrival(nodes) - self.min_arrival(nodes)
    }

    /// The node among `nodes` with the largest arrival — the head of the
    /// critical path.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    #[must_use]
    #[expect(
        clippy::expect_used,
        reason = "emptiness is ruled out by the assert above"
    )]
    pub fn critical_sink(&self, nodes: &[NodeId]) -> NodeId {
        assert!(!nodes.is_empty(), "critical_sink over an empty node set");
        *nodes
            .iter()
            .max_by(|a, b| self.arrival(**a).total_cmp(&self.arrival(**b)))
            .expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_accessors() {
        let an = DelayAnalysis::new(vec![0.0, 5.0, 9.0], vec![0.0; 3], vec![0.0; 3]);
        let ids = [NodeId(1), NodeId(2)];
        assert_eq!(an.min_arrival(&ids), 5.0);
        assert_eq!(an.max_arrival(&ids), 9.0);
        assert_eq!(an.skew(&ids), 4.0);
        assert_eq!(an.arrival(NodeId(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty node set")]
    fn empty_skew_panics() {
        let an = DelayAnalysis::new(vec![0.0], vec![0.0], vec![0.0]);
        let _ = an.skew(&[]);
    }
}
