use std::fmt;

use crate::{analysis::DelayAnalysis, Device};

/// Identifier of a node inside an [`RcTree`].
///
/// Node ids are dense indices assigned in insertion order; the root is
/// always id 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct Node {
    parent: Option<NodeId>,
    /// Resistance of the wire from the parent to this node (Ω).
    wire_res: f64,
    /// Total capacitance of that wire (pF), split half/half in the π model.
    wire_cap: f64,
    /// Pin load at the node itself (pF) — sink loads.
    cap_load: f64,
    /// Optional buffering device at this node; its input sits at the node,
    /// its output drives the children edges.
    device: Option<Device>,
    children: Vec<NodeId>,
}

/// A distributed RC tree with optional buffering devices, analyzed under
/// the Elmore delay model.
///
/// Wires use the standard π model (half the wire capacitance at each end),
/// so the Elmore contribution of an edge is `R · (C_wire/2 + C_downstream)`.
/// A [`Device`] placed at a node *decouples* its subtree: the upstream
/// network sees only the device input capacitance, and the device adds
/// `intrinsic + R_out · C_driven` to every downstream path.
///
/// This is the from-scratch delay oracle that the incremental clock-tree
/// builders are validated against.
///
/// ```
/// use gcr_rctree::{Device, RcTree};
///
/// let source = Device::new(0.1, 50.0, 0.0, 0.0);
/// let mut t = RcTree::new(source);
/// let a = t.add_node(t.root(), 10.0, 0.5);
/// let b = t.add_node(t.root(), 10.0, 0.5);
/// t.set_load(a, 0.2);
/// t.set_load(b, 0.2);
/// let analysis = t.analyze();
/// // The tree is symmetric, so the two sinks see identical delay.
/// assert_eq!(analysis.arrival(a), analysis.arrival(b));
/// assert!(analysis.skew(&[a, b]) < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct RcTree {
    nodes: Vec<Node>,
    source: Device,
}

impl RcTree {
    /// Creates a tree containing only the root node, driven by `source`.
    #[must_use]
    pub fn new(source: Device) -> Self {
        Self {
            nodes: vec![Node {
                parent: None,
                wire_res: 0.0,
                wire_cap: 0.0,
                cap_load: 0.0,
                device: None,
                children: Vec::new(),
            }],
            source,
        }
    }

    /// The root node id (always 0).
    #[must_use]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of nodes in the tree.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds only the root.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Adds a node connected to `parent` by a wire of total resistance
    /// `wire_res` (Ω) and total capacitance `wire_cap` (pF); returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range or the RC values are negative or
    /// non-finite.
    pub fn add_node(&mut self, parent: NodeId, wire_res: f64, wire_cap: f64) -> NodeId {
        assert!(parent.0 < self.nodes.len(), "unknown parent {parent}");
        assert!(
            wire_res.is_finite() && wire_res >= 0.0 && wire_cap.is_finite() && wire_cap >= 0.0,
            "wire RC must be finite and >= 0, got R={wire_res}, C={wire_cap}"
        );
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            parent: Some(parent),
            wire_res,
            wire_cap,
            cap_load: 0.0,
            device: None,
            children: Vec::new(),
        });
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Sets the pin load at `node` (pF).
    ///
    /// # Panics
    ///
    /// Panics if the load is negative or non-finite.
    pub fn set_load(&mut self, node: NodeId, cap: f64) {
        assert!(
            cap.is_finite() && cap >= 0.0,
            "load must be finite and >= 0, got {cap}"
        );
        self.nodes[node.0].cap_load = cap;
    }

    /// Installs a buffering device at `node` (replacing any previous one).
    pub fn set_device(&mut self, node: NodeId, device: Device) {
        self.nodes[node.0].device = Some(device);
    }

    /// Removes the device at `node`, if any, and returns it.
    pub fn clear_device(&mut self, node: NodeId) -> Option<Device> {
        self.nodes[node.0].device.take()
    }

    /// The device at `node`, if any.
    #[must_use]
    pub fn device(&self, node: NodeId) -> Option<Device> {
        self.nodes[node.0].device
    }

    /// The parent of `node`, or `None` for the root.
    #[must_use]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.0].parent
    }

    /// The children of `node`.
    #[must_use]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.0].children
    }

    /// Ids of all leaf nodes, in insertion order.
    #[must_use]
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .map(NodeId)
            .filter(|&n| self.nodes[n.0].children.is_empty() && (n.0 != 0 || self.nodes.len() == 1))
            .collect()
    }

    /// Nodes in a topological (parent-before-child) order.
    fn topo_order(&self) -> Vec<NodeId> {
        // Insertion order already guarantees parents precede children.
        (0..self.nodes.len()).map(NodeId).collect()
    }

    /// Runs the Elmore analysis and returns per-node arrivals and
    /// capacitances.
    #[must_use]
    pub fn analyze(&self) -> DelayAnalysis {
        let n = self.nodes.len();
        let order = self.topo_order();

        // Post-order accumulation of downstream capacitance.
        let mut cap_at_output = vec![0.0f64; n]; // cap driven at the node's output point
        let mut cap_seen = vec![0.0f64; n]; // cap presented to the wire above
        for &id in order.iter().rev() {
            let node = &self.nodes[id.0];
            let mut c = node.cap_load;
            for &ch in &node.children {
                c += self.nodes[ch.0].wire_cap + cap_seen[ch.0];
            }
            cap_at_output[id.0] = c;
            cap_seen[id.0] = match node.device {
                Some(d) => d.input_cap(),
                None => c,
            };
        }

        // Pre-order arrival propagation.
        let mut arrival = vec![0.0f64; n]; // at node input (node location)
        let mut drive = vec![0.0f64; n]; // at the point driving the children edges
        for &id in &order {
            let node = &self.nodes[id.0];
            if let Some(p) = node.parent {
                arrival[id.0] = drive[p.0] + node.wire_res * (node.wire_cap / 2.0 + cap_seen[id.0]);
            } else {
                arrival[id.0] = 0.0;
            }
            let stage = if node.parent.is_none() {
                // The root is driven by the clock source.
                self.source.stage_delay(cap_at_output[id.0])
            } else {
                match node.device {
                    Some(d) => d.stage_delay(cap_at_output[id.0]),
                    None => 0.0,
                }
            };
            drive[id.0] = arrival[id.0] + stage;
        }

        DelayAnalysis::new(arrival, cap_seen, cap_at_output)
    }

    /// Sum of all wire capacitance in the tree (pF), ignoring devices and
    /// loads.
    #[must_use]
    pub fn total_wire_cap(&self) -> f64 {
        self.nodes.iter().map(|n| n.wire_cap).sum()
    }

    /// Wire (resistance, capacitance) of the edge feeding `node` (zero for
    /// the root).
    #[must_use]
    pub fn wire_rc(&self, node: NodeId) -> (f64, f64) {
        let n = &self.nodes[node.0];
        (n.wire_res, n.wire_cap)
    }

    /// The pin load at `node` (pF).
    #[must_use]
    pub fn load(&self, node: NodeId) -> f64 {
        self.nodes[node.0].cap_load
    }

    /// The clock source driver at the root.
    #[must_use]
    pub fn source_device(&self) -> Device {
        self.source
    }

    /// The path from `node` back to the root, inclusive on both ends
    /// (node first) — with [`DelayAnalysis::critical_sink`], the critical
    /// path of the network.
    #[must_use]
    pub fn path_to_root(&self, node: NodeId) -> Vec<NodeId> {
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = self.nodes[cur.0].parent {
            path.push(p);
            cur = p;
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src() -> Device {
        Device::new(0.1, 50.0, 0.0, 0.0)
    }

    /// Hand-computed single-wire Elmore: source R=50 drives wire (R=10,
    /// C=0.4) into load 0.6.
    #[test]
    fn single_wire_hand_computed() {
        let mut t = RcTree::new(src());
        let a = t.add_node(t.root(), 10.0, 0.4);
        t.set_load(a, 0.6);
        let an = t.analyze();
        // Source stage: 50 * (0.4 + 0.6) = 50 ps; wire: 10 * (0.2 + 0.6) = 8.
        assert!(
            (an.arrival(a) - 58.0).abs() < 1e-12,
            "got {}",
            an.arrival(a)
        );
    }

    /// A device in the middle decouples the downstream capacitance.
    #[test]
    fn device_decouples_subtree() {
        let build = |with_gate: bool| {
            let mut t = RcTree::new(src());
            let mid = t.add_node(t.root(), 10.0, 0.4);
            if with_gate {
                t.set_device(mid, Device::new(0.04, 250.0, 40.0, 0.0));
            }
            let sink = t.add_node(mid, 20.0, 0.8);
            t.set_load(sink, 0.5);
            (t.analyze(), mid, sink)
        };
        let (gated, mid_g, sink_g) = build(true);
        let (plain, mid_p, _sink_p) = build(false);
        // Upstream of the gate, the gated tree is *faster* because the
        // source sees only C_g = 0.04 instead of the full 1.7 pF subtree.
        assert!(gated.arrival(mid_g) < plain.arrival(mid_p));
        // Source stage gated: 50 * (0.4 + 0.04) = 22; wire: 10*(0.2+0.04)=2.4.
        assert!((gated.arrival(mid_g) - 24.4).abs() < 1e-12);
        // Gate stage: 40 + 250 * (0.8 + 0.5) = 365; wire: 20*(0.4+0.5)=18.
        assert!((gated.arrival(sink_g) - (24.4 + 365.0 + 18.0)).abs() < 1e-12);
    }

    #[test]
    fn symmetric_tree_has_zero_skew() {
        let mut t = RcTree::new(src());
        let l = t.add_node(t.root(), 5.0, 0.2);
        let r = t.add_node(t.root(), 5.0, 0.2);
        let mut sinks = Vec::new();
        for mid in [l, r] {
            for _ in 0..2 {
                let s = t.add_node(mid, 7.0, 0.3);
                t.set_load(s, 0.25);
                sinks.push(s);
            }
        }
        let an = t.analyze();
        assert!(an.skew(&sinks) < 1e-12);
        assert!(an.arrival(sinks[0]) > 0.0);
    }

    #[test]
    fn asymmetric_load_creates_skew() {
        let mut t = RcTree::new(src());
        let a = t.add_node(t.root(), 5.0, 0.2);
        let b = t.add_node(t.root(), 5.0, 0.2);
        t.set_load(a, 0.1);
        t.set_load(b, 0.9);
        let an = t.analyze();
        assert!(an.arrival(b) > an.arrival(a));
        assert!(an.skew(&[a, b]) > 0.0);
    }

    #[test]
    fn leaves_enumerates_sinks_only() {
        let mut t = RcTree::new(src());
        let m = t.add_node(t.root(), 1.0, 0.1);
        let s1 = t.add_node(m, 1.0, 0.1);
        let s2 = t.add_node(m, 1.0, 0.1);
        assert_eq!(t.leaves(), vec![s1, s2]);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_tree_root_is_leaf() {
        let t = RcTree::new(src());
        assert!(t.is_empty());
        assert_eq!(t.leaves(), vec![t.root()]);
    }

    #[test]
    fn clear_device_round_trip() {
        let mut t = RcTree::new(src());
        let a = t.add_node(t.root(), 1.0, 0.1);
        let d = Device::new(0.04, 250.0, 40.0, 0.0);
        t.set_device(a, d);
        assert_eq!(t.device(a), Some(d));
        assert_eq!(t.clear_device(a), Some(d));
        assert_eq!(t.device(a), None);
        assert_eq!(t.clear_device(a), None);
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn bad_parent_rejected() {
        let mut t = RcTree::new(src());
        let _ = t.add_node(NodeId(99), 1.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "wire RC")]
    fn negative_rc_rejected() {
        let mut t = RcTree::new(src());
        let _ = t.add_node(NodeId(0), -1.0, 0.1);
    }

    #[test]
    fn total_wire_cap_sums_edges() {
        let mut t = RcTree::new(src());
        let a = t.add_node(t.root(), 1.0, 0.25);
        let _b = t.add_node(a, 1.0, 0.75);
        assert_eq!(t.total_wire_cap(), 1.0);
    }

    #[test]
    fn critical_path_traces_the_slow_sink() {
        let mut t = RcTree::new(src());
        let fast = t.add_node(t.root(), 1.0, 0.1);
        let mid = t.add_node(t.root(), 10.0, 0.5);
        let slow = t.add_node(mid, 20.0, 0.8);
        t.set_load(fast, 0.05);
        t.set_load(slow, 0.4);
        let an = t.analyze();
        assert_eq!(an.critical_sink(&[fast, slow]), slow);
        assert_eq!(t.path_to_root(slow), vec![slow, mid, t.root()]);
        assert_eq!(t.path_to_root(t.root()), vec![t.root()]);
    }
}
