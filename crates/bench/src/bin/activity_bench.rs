//! Streaming activity-scan throughput on the production scenario presets.
//!
//! For each [`ActivityScenario`] this measures, on the same
//! multi-million-cycle trace:
//!
//! * the **sequential oracle** — materialize the trace, then
//!   [`ActivityTables::scan`] (the paper's original path);
//! * the **streaming scan** at 1 thread — [`gcr_activity::scan_source`]
//!   over the incremental model generator, cold run to grow the
//!   [`ScanScratch`], then a timed warm rescan whose chunk loop must not
//!   allocate (`loop_allocs`, fed by a counting global allocator through
//!   [`gcr_activity::set_alloc_probe`]);
//! * the **streaming scan** at 8 threads — same contract, and the tables
//!   must stay **bit-identical** to the sequential oracle at every thread
//!   count (`identical_topology` in the JSON, reusing the gate name
//!   `bench_diff` already enforces).
//!
//! Rows are emitted with `"strict_zero_alloc": true`, which makes
//! `bench_diff` fail — without needing a baseline — whenever a warm chunk
//! loop allocated; the usual wall-time threshold catches throughput
//! regressions against the checked-in `BENCH_activity.json`.
//!
//! Usage: `activity_bench [--cycles N] [--seed S] [--out BENCH_activity.json]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use gcr_activity::{ActivityTables, ScanParams, ScanProfile, ScanScratch};
use gcr_workloads::ActivityScenario;

/// Pass-through allocator that counts allocation events (alloc + realloc),
/// so the scan can report how many its chunk and merge windows perform.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_probe() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// Modules in every scenario model: enough for non-trivial RTL without
/// dominating the scan with table construction.
const MODULES: usize = 96;

/// One scenario's measurements.
struct ScenarioRun {
    scenario: ActivityScenario,
    cycles: u64,
    /// Materialize + sequential scan, wall ms.
    sequential_ms: f64,
    /// Warm single-thread streaming scan.
    warm1: ScanProfile,
    warm1_ms: f64,
    /// Warm 8-thread streaming scan.
    warm8: ScanProfile,
    warm8_ms: f64,
    /// Streamed tables (both thread counts) == sequential oracle, bit
    /// for bit.
    identical_tables: bool,
}

impl ScenarioRun {
    /// Warm 8-thread speedup over the warm single-thread run.
    fn speedup_8t(&self) -> f64 {
        self.warm1_ms / self.warm8_ms.max(1e-6)
    }
}

#[expect(
    clippy::expect_used,
    reason = "bench harness: aborting on a degenerate generated model is intended"
)]
fn measure(scenario: ActivityScenario, cycles: u64, seed: u64) -> ScenarioRun {
    let model = scenario
        .model(MODULES, seed)
        .expect("scenario model is valid by construction");

    // Sequential oracle: the paper's path — materialize, then scan.
    let t0 = Instant::now();
    let stream = model.generate_stream(cycles as usize);
    let oracle = ActivityTables::scan(model.rtl(), &stream);
    let sequential_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(stream);

    // Streaming, warm: per thread count, a cold scan grows the scratch
    // and the timed rescan reuses it — the steady-state regime whose
    // chunk loop must not allocate.
    let warm_scan = |threads: usize| -> (ActivityTables, ScanProfile, f64) {
        let params = ScanParams {
            threads: Some(threads),
            ..ScanParams::default()
        };
        let mut scratch = ScanScratch::new();
        let mut cold = model.trace_source(cycles);
        gcr_activity::scan_source(model.rtl(), &mut cold, &params, &mut scratch)
            .expect("streaming scan failed on a generated trace");
        let mut warm = model.trace_source(cycles);
        let t = Instant::now();
        let (tables, profile) =
            gcr_activity::scan_source(model.rtl(), &mut warm, &params, &mut scratch)
                .expect("streaming scan failed on a generated trace");
        (tables, profile, t.elapsed().as_secs_f64() * 1e3)
    };
    let (tables1, warm1, warm1_ms) = warm_scan(1);
    let (tables8, warm8, warm8_ms) = warm_scan(8);

    let identical_tables = tables1.ift() == oracle.ift()
        && tables1.itmatt() == oracle.itmatt()
        && tables8.ift() == oracle.ift()
        && tables8.itmatt() == oracle.itmatt();

    ScenarioRun {
        scenario,
        cycles,
        sequential_ms,
        warm1,
        warm1_ms,
        warm8,
        warm8_ms,
        identical_tables,
    }
}

/// Renders the `bench_diff`-compatible JSON document. The warm
/// single-thread streaming run is the gated row (`pruned.wall_ms`,
/// `pruned.loop_allocs`); the oracle and 8-thread numbers ride along as
/// informational fields.
fn render_json(cycles: u64, seed: u64, runs: &[ScenarioRun]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"params\": {{\"cycles\": {cycles}, \"seed\": {seed}, \"modules\": {MODULES}}},"
    );
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(
            out,
            "      \"benchmark\": \"{}\", \"objective\": \"activity-scan\", \
             \"cycles\": {},",
            r.scenario.name(),
            r.cycles
        );
        let _ = writeln!(
            out,
            "      \"pruned\": {{\"wall_ms\": {:.3}, \"loop_allocs\": {}, \
             \"merge_allocs\": {}, \"chunks\": {}}},",
            r.warm1_ms, r.warm1.chunk_allocs, r.warm1.merge_allocs, r.warm1.chunks
        );
        let _ = writeln!(
            out,
            "      \"sequential_wall_ms\": {:.3}, \"warm8_wall_ms\": {:.3}, \
             \"speedup_8t\": {:.2}, \"threads8\": {}, \
             \"cycles_per_sec\": {:.0},",
            r.sequential_ms,
            r.warm8_ms,
            r.speedup_8t(),
            r.warm8.threads,
            r.warm1.cycles_per_sec()
        );
        let _ = writeln!(
            out,
            "      \"strict_zero_alloc\": true, \"identical_topology\": {}",
            r.identical_tables
        );
        out.push_str(if i + 1 == runs.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parsed command line.
#[derive(Debug)]
struct Cli {
    cycles: u64,
    seed: u64,
    out_path: String,
}

/// Parses the argument list (without the program name). Errors are the
/// usage message to print before exiting nonzero.
fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        cycles: 10_000_000,
        seed: 20,
        out_path: String::from("BENCH_activity.json"),
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        if arg == "--cycles" {
            cli.cycles = value("--cycles")?
                .parse::<u64>()
                .map_err(|e| format!("--cycles: {e}"))?
                .max(2);
        } else if arg == "--seed" {
            cli.seed = value("--seed")?
                .parse::<u64>()
                .map_err(|e| format!("--seed: {e}"))?;
        } else if arg == "--out" {
            cli.out_path = value("--out")?;
        } else {
            return Err(format!(
                "unknown argument `{arg}`; usage: activity_bench [--cycles N] \
                 [--seed S] [--out PATH]"
            ));
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    gcr_activity::set_alloc_probe(alloc_probe);
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut runs = Vec::new();
    for scenario in ActivityScenario::ALL {
        eprintln!(
            "{scenario}: streaming {} cycles ({})...",
            cli.cycles,
            scenario.description()
        );
        runs.push(measure(scenario, cli.cycles, cli.seed));
    }

    let mut ok = true;
    for r in &runs {
        println!(
            "{:<16} cycles {:>10}  sequential {:>8.1} ms  warm 1t {:>8.1} ms \
             ({:>6.1} Mcyc/s, loop allocs {:>2})  warm 8t {:>8.1} ms ({:.2}x)  identical {}",
            r.scenario.name(),
            r.cycles,
            r.sequential_ms,
            r.warm1_ms,
            r.warm1.cycles_per_sec() / 1e6,
            r.warm1.chunk_allocs,
            r.warm8_ms,
            r.speedup_8t(),
            r.identical_tables,
        );
        if !r.identical_tables {
            eprintln!(
                "FAIL: {} streamed tables diverged from the sequential oracle",
                r.scenario.name()
            );
            ok = false;
        }
        if r.warm1.chunk_allocs > 0 {
            eprintln!(
                "FAIL: {} warm single-thread chunk loop allocated {} times",
                r.scenario.name(),
                r.warm1.chunk_allocs
            );
            ok = false;
        }
    }

    let json = render_json(cli.cycles, cli.seed, &runs);
    if let Err(e) = std::fs::write(&cli.out_path, &json) {
        eprintln!("failed to write {}: {e}", cli.out_path);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", cli.out_path);

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args_defaults() {
        let cli = parse_args(Vec::new()).unwrap();
        assert_eq!(cli.cycles, 10_000_000);
        assert_eq!(cli.out_path, "BENCH_activity.json");
    }

    #[test]
    fn parse_args_overrides() {
        let cli =
            parse_args(["--cycles", "5000", "--seed", "7", "--out", "x.json"].map(String::from))
                .unwrap();
        assert_eq!(cli.cycles, 5_000);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.out_path, "x.json");
    }

    #[test]
    fn arg_errors_are_reported() {
        assert!(parse_args(["--cycles"].map(String::from)).is_err());
        assert!(parse_args(["--cycles", "nope"].map(String::from)).is_err());
        assert!(parse_args(["--bogus"].map(String::from))
            .unwrap_err()
            .contains("unknown argument"));
    }

    #[test]
    fn json_rows_carry_the_gate_fields() {
        let run = measure(ActivityScenario::LowPersistence, 5_000, 3);
        assert!(run.identical_tables);
        let json = render_json(5_000, 3, &[run]);
        let doc = gcr_bench::json::parse(&json).unwrap();
        let rows = doc
            .get("runs")
            .and_then(gcr_bench::json::Json::as_array)
            .unwrap();
        let row = &rows[0];
        assert_eq!(
            row.get("benchmark").and_then(gcr_bench::json::Json::as_str),
            Some("low-persistence")
        );
        assert_eq!(
            row.get("strict_zero_alloc")
                .and_then(gcr_bench::json::Json::as_bool),
            Some(true)
        );
        assert_eq!(
            row.get("identical_topology")
                .and_then(gcr_bench::json::Json::as_bool),
            Some(true)
        );
        assert!(row
            .get("pruned")
            .and_then(|p| p.get("loop_allocs"))
            .and_then(gcr_bench::json::Json::as_f64)
            .is_some());
    }
}
