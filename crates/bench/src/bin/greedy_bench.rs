//! Pruned-vs-exhaustive greedy engine comparison on the Tsay suite.
//!
//! For each requested benchmark (default: r1–r5) and for both merge
//! objectives — plain nearest-neighbor distance and the paper's Equation-3
//! switched capacitance — this runs the lower-bound pruned engine
//! ([`gcr_cts::run_greedy_instrumented`]) and the exhaustive reference
//! ([`gcr_cts::run_greedy_exhaustive_instrumented`]) on identical inputs,
//! then reports exact-cost evaluation counts, wall times, and whether the
//! two engines produced bit-identical topologies.
//!
//! Usage: `greedy_bench [r1 r2 ...] [--out BENCH_greedy.json]`
//!
//! The JSON output backs the acceptance gate of the pruning work: the
//! pruned engine must stay bit-identical everywhere and perform ≤ 20 % of
//! the exhaustive engine's exact-cost evaluations on r4/r5.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use gcr_core::{GatedObjective, RouterConfig};
use gcr_cts::{
    run_greedy_exhaustive_instrumented, run_greedy_instrumented, GreedyStats, MergeObjective,
    NearestNeighborObjective,
};
use gcr_rctree::Technology;
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

/// One engine's measurements on one (benchmark, objective) input.
struct EngineRun {
    stats: GreedyStats,
    wall_ms: f64,
}

/// A pruned/exhaustive pair on one (benchmark, objective) input.
struct Comparison {
    benchmark: &'static str,
    objective: &'static str,
    sinks: usize,
    pruned: EngineRun,
    exhaustive: EngineRun,
    identical_topology: bool,
}

impl Comparison {
    /// Pruned exact evaluations as a fraction of exhaustive ones.
    fn exact_eval_ratio(&self) -> f64 {
        let denom = self.exhaustive.stats.exact_cost_evals;
        if denom == 0 {
            return 0.0;
        }
        self.pruned.stats.exact_cost_evals as f64 / denom as f64
    }
}

#[expect(
    clippy::expect_used,
    reason = "bench harness: aborting on an unroutable generated workload is intended"
)]
fn compare<O: MergeObjective + Clone>(
    benchmark: &'static str,
    objective_name: &'static str,
    n: usize,
    objective: &O,
) -> Comparison {
    let mut exhaustive_obj = objective.clone();
    let t0 = Instant::now();
    let (reference, exhaustive_stats) = run_greedy_exhaustive_instrumented(n, &mut exhaustive_obj)
        .expect("exhaustive greedy failed on a generated workload");
    let exhaustive_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut pruned_obj = objective.clone();
    let t1 = Instant::now();
    let (pruned_topology, pruned_stats) = run_greedy_instrumented(n, &mut pruned_obj)
        .expect("pruned greedy failed on a generated workload");
    let pruned_ms = t1.elapsed().as_secs_f64() * 1e3;

    Comparison {
        benchmark,
        objective: objective_name,
        sinks: n,
        pruned: EngineRun {
            stats: pruned_stats,
            wall_ms: pruned_ms,
        },
        exhaustive: EngineRun {
            stats: exhaustive_stats,
            wall_ms: exhaustive_ms,
        },
        identical_topology: pruned_topology == reference,
    }
}

#[expect(
    clippy::expect_used,
    reason = "bench harness: aborting on an unroutable generated workload is intended"
)]
fn run_benchmark(which: TsayBenchmark, params: &WorkloadParams) -> Vec<Comparison> {
    let workload = Workload::generate(which, params).expect("workload generation failed");
    let sinks = &workload.benchmark.sinks;
    let n = sinks.len();
    let tech = Technology::default();
    let config = RouterConfig::new(tech.clone(), workload.benchmark.die);
    let module_of: Vec<usize> = (0..n).collect();

    let nn = NearestNeighborObjective::new(&tech, sinks, None);
    let gated = GatedObjective::new(
        config.tech(),
        config.controller(),
        &workload.tables,
        sinks,
        &module_of,
    );
    vec![
        compare(which.name(), "nearest-neighbor", n, &nn),
        compare(which.name(), "equation-3", n, &gated),
    ]
}

fn stats_json(out: &mut String, label: &str, run: &EngineRun) {
    let s = run.stats;
    let _ = write!(
        out,
        "      \"{label}\": {{\"exact_cost_evals\": {}, \"bound_evals\": {}, \
         \"ring_expansions\": {}, \"heap_pops\": {}, \"wall_ms\": {:.3}}}",
        s.exact_cost_evals, s.bound_evals, s.ring_expansions, s.heap_pops, run.wall_ms
    );
}

fn render_json(params: &WorkloadParams, runs: &[Comparison]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"params\": {{\"stream_len\": {}, \"seed\": {}, \"groups\": {}}},",
        params.stream_len, params.seed, params.groups
    );
    out.push_str("  \"runs\": [\n");
    for (i, c) in runs.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(
            out,
            "      \"benchmark\": \"{}\", \"objective\": \"{}\", \"sinks\": {},",
            c.benchmark, c.objective, c.sinks
        );
        stats_json(&mut out, "pruned", &c.pruned);
        out.push_str(",\n");
        stats_json(&mut out, "exhaustive", &c.exhaustive);
        out.push_str(",\n");
        let _ = writeln!(
            out,
            "      \"exact_eval_ratio\": {:.6}, \"identical_topology\": {}",
            c.exact_eval_ratio(),
            c.identical_topology
        );
        out.push_str(if i + 1 == runs.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn parse_benchmark(name: &str) -> Option<TsayBenchmark> {
    TsayBenchmark::ALL.into_iter().find(|b| b.name() == name)
}

fn main() -> ExitCode {
    let mut benchmarks: Vec<TsayBenchmark> = Vec::new();
    let mut out_path = String::from("BENCH_greedy.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::from(2);
                }
            }
        } else if let Some(b) = parse_benchmark(&arg) {
            benchmarks.push(b);
        } else {
            eprintln!("unknown argument `{arg}`; usage: greedy_bench [r1..r5] [--out PATH]");
            return ExitCode::from(2);
        }
    }
    if benchmarks.is_empty() {
        benchmarks.extend(TsayBenchmark::ALL);
    }

    let params = WorkloadParams::smoke();
    let mut runs = Vec::new();
    for which in benchmarks {
        eprintln!("{which}: routing {} sinks...", which.num_sinks());
        runs.extend(run_benchmark(which, &params));
    }

    let mut all_identical = true;
    for c in &runs {
        println!(
            "{:>3} {:<16} sinks {:>5}  exact {:>9} / {:>9} ({:>5.1} %)  wall {:>8.1} ms / {:>8.1} ms  identical {}",
            c.benchmark,
            c.objective,
            c.sinks,
            c.pruned.stats.exact_cost_evals,
            c.exhaustive.stats.exact_cost_evals,
            100.0 * c.exact_eval_ratio(),
            c.pruned.wall_ms,
            c.exhaustive.wall_ms,
            c.identical_topology,
        );
        all_identical &= c.identical_topology;
    }

    let json = render_json(&params, &runs);
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if all_identical {
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: pruned engine diverged from the exhaustive reference");
        ExitCode::FAILURE
    }
}
