//! Pruned-vs-exhaustive greedy engine comparison on the Tsay suite.
//!
//! For each requested benchmark (default: r1–r5) and for both merge
//! objectives — plain nearest-neighbor distance and the paper's Equation-3
//! switched capacitance — this runs the lower-bound pruned engine
//! ([`gcr_cts::run_greedy_with_scratch`]) and the exhaustive reference
//! ([`gcr_cts::run_greedy_exhaustive_with_scratch`]) on identical inputs,
//! then reports exact-cost evaluation counts, per-phase wall times,
//! allocation counts, and whether the two engines produced bit-identical
//! topologies.
//!
//! The pruned engine is measured **warm**: a first (cold) run grows the
//! reusable [`GreedyScratch`] buffers, then the timed run reuses them — the
//! steady-state regime of the arena engine, whose merge loop performs zero
//! heap allocations (`loop_allocs`). A counting global allocator feeds the
//! engine's allocation profile via [`gcr_cts::set_alloc_probe`].
//!
//! Usage: `greedy_bench [r1 r2 ...] [--eco] [--out BENCH_greedy.json]
//! [--trace PATH]`
//!
//! With `--eco` each reference benchmark additionally measures the
//! incremental ECO engine on the canonical small edit — a single-sink
//! move of ~2 % of the die — against a warm from-scratch pruned run over
//! the same edited design. Both sides exclude objective construction and
//! embedding (the merge search is the contested phase); the ECO side is
//! the warm loop of `examples/eco.rs`: one [`gcr_core::GatedObjective`]
//! and one [`gcr_cts::EcoScratch`] stay alive and
//! [`GatedObjective::truncate`] rewinds to the leaf rows between edits.
//! The equation-3 run row gains `eco_warm_ms`, `eco_scratch_ms`,
//! `eco_speedup_vs_scratch` and `eco_loop_allocs` fields, which
//! `bench_diff` gates alongside the wall times. Scale benchmarks
//! (r6–r8) skip the ECO columns: their from-scratch reference is the
//! coarsened engine, a different algorithm than the flat pruned run the
//! speedup is defined against.
//!
//! The scale benchmarks (r6–r8, up to a million sinks) are opt-in by
//! name and measured differently: the exhaustive reference is skipped
//! (its all-pairs seeding alone would dwarf the measurement) and the
//! instance runs through the hierarchical coarsening engine
//! ([`gcr_cts::run_greedy_coarsened`]); `identical_topology` there
//! records that the warm run at the ambient thread count reproduced the
//! single-threaded cold run's topology.
//!
//! With `--trace PATH` the run records a merged Chrome-trace timeline
//! (load it in `chrome://tracing`, Perfetto or Speedscope): workload and
//! activity-table construction, the warm pruned greedy run with its
//! ring/defer/bound/merge sub-phases, and one full gated-routing flow per
//! benchmark (Equation-3 merge, embedding, Equation-3 evaluation) so the
//! trace covers every layer of the pipeline.
//!
//! The JSON output backs two acceptance gates: the pruned engine must stay
//! bit-identical everywhere, and `bench_diff` compares `pruned.wall_ms`
//! against the checked-in baseline to catch performance regressions.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gcr_core::{
    evaluate_traced, gated_region_factory, route_gated_coarsened_traced, route_gated_mapped_traced,
    DeviceRole, GatedObjective, RouterConfig,
};
use gcr_cts::{
    apply_eco, plan_eco_leaves, run_greedy_coarsened, run_greedy_coarsened_traced,
    run_greedy_exhaustive_with_scratch, run_greedy_with_scratch, run_greedy_with_scratch_traced,
    CoarsenParams, CoarsenScratch, EcoEdit, EcoScratch, GreedyParams, GreedyProfile, GreedyScratch,
    GreedyStats, MergeObjective, NearestNeighborObjective, Sink,
};
use gcr_geometry::Point;
use gcr_rctree::Technology;
use gcr_trace::{ChromeTraceSink, EchoWarnSink, TraceSink, Tracer};
use gcr_workloads::{TsayBenchmark, Workload, WorkloadParams};

/// Pass-through allocator that counts allocation events (alloc + realloc),
/// so the greedy engine can report how many its phases perform.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_probe() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// One engine's measurements on one (benchmark, objective) input.
struct EngineRun {
    stats: GreedyStats,
    profile: GreedyProfile,
    wall_ms: f64,
}

/// A pruned/exhaustive pair on one (benchmark, objective) input. On the
/// scale benchmarks (above [`EXHAUSTIVE_LIMIT`] sinks) the exhaustive
/// reference is skipped — its all-pairs seeding alone would dwarf the
/// measured run — and `identical_topology` instead records that the
/// coarsened engine reproduced its own single-threaded result.
struct Comparison {
    benchmark: &'static str,
    objective: &'static str,
    sinks: usize,
    pruned: EngineRun,
    exhaustive: Option<EngineRun>,
    identical_topology: bool,
    eco: Option<EcoBench>,
}

/// Incremental-ECO measurements on one benchmark: the canonical
/// single-sink move, warm incremental engine against a warm from-scratch
/// pruned run over the same edited design.
struct EcoBench {
    /// Best-of-[`ECO_ITERS`] warm `apply_eco` wall time.
    warm_ms: f64,
    /// Best-of-[`ECO_ITERS`] warm from-scratch pruned wall time.
    scratch_ms: f64,
    /// Worst warm-iteration loop-phase allocation count (contract: 0).
    loop_allocs: u64,
    /// Clean merges replayed verbatim by the last warm run.
    replayed: usize,
    /// Merges the splice search re-decided in the last warm run.
    spliced: usize,
}

impl EcoBench {
    /// How much faster the incremental engine re-routes the edit than
    /// the from-scratch pruned run (the PR's headline number).
    fn speedup_vs_scratch(&self) -> f64 {
        self.scratch_ms / self.warm_ms.max(1e-6)
    }
}

/// Warm timing repetitions for the ECO columns; both sides take their
/// best iteration, which filters scheduler noise out of the
/// sub-millisecond incremental runs.
const ECO_ITERS: usize = 5;

/// Largest sink count on which the exhaustive reference engine is run.
const EXHAUSTIVE_LIMIT: usize = 10_000;

impl Comparison {
    /// Pruned exact evaluations as a fraction of exhaustive ones (0 when
    /// the exhaustive reference was skipped).
    fn exact_eval_ratio(&self) -> f64 {
        let denom = match &self.exhaustive {
            Some(run) if run.stats.exact_cost_evals > 0 => run.stats.exact_cost_evals,
            _ => return 0.0,
        };
        self.pruned.stats.exact_cost_evals as f64 / denom as f64
    }
}

#[expect(
    clippy::expect_used,
    reason = "bench harness: aborting on an unroutable generated workload is intended"
)]
fn compare<O: MergeObjective + Clone>(
    benchmark: &'static str,
    objective_name: &'static str,
    n: usize,
    objective: &O,
    tracer: &Tracer,
) -> Comparison {
    let params = GreedyParams::default();

    let mut exhaustive_scratch = GreedyScratch::new();
    let mut exhaustive_obj = objective.clone();
    let t0 = Instant::now();
    let (reference, exhaustive_stats, exhaustive_profile) = run_greedy_exhaustive_with_scratch(
        n,
        &mut exhaustive_obj,
        &params,
        &mut exhaustive_scratch,
    )
    .expect("exhaustive greedy failed on a generated workload");
    let exhaustive_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Cold run grows the scratch buffers; the timed run reuses them, which
    // is the engine's steady-state (zero-allocation) regime. Only the warm
    // run is traced so the timeline shows steady-state phase costs.
    let mut scratch = GreedyScratch::new();
    let mut cold_obj = objective.clone();
    run_greedy_with_scratch(n, &mut cold_obj, &params, &mut scratch)
        .expect("pruned greedy failed on a generated workload");
    let mut pruned_obj = objective.clone();
    let t1 = Instant::now();
    let (pruned_topology, pruned_stats, pruned_profile) =
        run_greedy_with_scratch_traced(n, &mut pruned_obj, &params, &mut scratch, tracer)
            .expect("pruned greedy failed on a generated workload");
    let pruned_ms = t1.elapsed().as_secs_f64() * 1e3;

    Comparison {
        benchmark,
        objective: objective_name,
        sinks: n,
        pruned: EngineRun {
            stats: pruned_stats,
            profile: pruned_profile,
            wall_ms: pruned_ms,
        },
        exhaustive: Some(EngineRun {
            stats: exhaustive_stats,
            profile: exhaustive_profile,
            wall_ms: exhaustive_ms,
        }),
        identical_topology: pruned_topology == reference,
        eco: None,
    }
}

/// Scale-benchmark measurement: the hierarchical coarsening engine,
/// warm-scratch, against its own single-threaded cold run instead of the
/// (intractable) exhaustive reference. The cold run doubles as the
/// determinism check: `identical_topology` records that the warm run at
/// the ambient thread count reproduced the single-threaded topology.
#[expect(
    clippy::expect_used,
    reason = "bench harness: aborting on an unroutable generated workload is intended"
)]
fn compare_coarsened<O, R, F>(
    benchmark: &'static str,
    objective_name: &'static str,
    n: usize,
    objective: &O,
    factory: &F,
    tracer: &Tracer,
) -> Comparison
where
    O: MergeObjective + Clone,
    R: MergeObjective,
    F: Fn(&[u32]) -> R + Sync,
{
    let mut scratch = CoarsenScratch::new();
    let cold_params = CoarsenParams {
        greedy: GreedyParams {
            threads: Some(1),
            ..GreedyParams::default()
        },
        ..CoarsenParams::default()
    };
    let mut cold_obj = objective.clone();
    let (reference, _, _) =
        run_greedy_coarsened(n, &mut cold_obj, factory, &cold_params, &mut scratch)
            .expect("coarsened greedy failed on a generated workload");

    let warm_params = CoarsenParams::default();
    let mut warm_obj = objective.clone();
    let t0 = Instant::now();
    let (topology, stats, profile) = run_greedy_coarsened_traced(
        n,
        &mut warm_obj,
        factory,
        &warm_params,
        &mut scratch,
        tracer,
    )
    .expect("coarsened greedy failed on a generated workload");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    Comparison {
        benchmark,
        objective: objective_name,
        sinks: n,
        pruned: EngineRun {
            stats,
            profile,
            wall_ms,
        },
        exhaustive: None,
        identical_topology: topology == reference,
        eco: None,
    }
}

/// Measures the incremental ECO engine on the canonical small edit: the
/// middle sink moves by ~2 % of the die. Reference is a warm pruned run
/// over the *edited* design (same leaf set as the ECO side); the ECO
/// side keeps one objective and one [`EcoScratch`] warm across
/// iterations, rewinding with [`GatedObjective::truncate`] — the steady
/// state of an ECO stream, whose loop phase must not allocate.
#[expect(
    clippy::expect_used,
    reason = "bench harness: aborting on an unroutable generated workload is intended"
)]
fn measure_eco(workload: &gcr_workloads::Workload, config: &RouterConfig) -> EcoBench {
    let sinks = &workload.benchmark.sinks;
    let n = sinks.len();
    let die = workload.benchmark.die;
    let module_of = workload.module_of();
    let params = GreedyParams::default();
    let mut scratch = GreedyScratch::new();

    // The routed design the ECO perturbs: its merge topology is all the
    // engine consumes (embedding is outside both measured windows).
    let mut old_obj = GatedObjective::new(
        config.tech(),
        config.controller(),
        &workload.tables,
        sinks,
        &module_of,
    );
    let (old_topology, _, _) = run_greedy_with_scratch(n, &mut old_obj, &params, &mut scratch)
        .expect("pruned greedy failed on a generated workload");
    let old_locations: Vec<Point> = sinks.iter().map(Sink::location).collect();

    let index = n / 2;
    let from = sinks[index].location();
    let reach = 0.02 * (die.max().x - die.min().x).max(die.max().y - die.min().y);
    let to = Point::new(
        (from.x + reach).min(die.max().x),
        (from.y + reach).min(die.max().y),
    );
    let edits = [EcoEdit::MoveSink { index, to }];
    let plan = plan_eco_leaves(n, &edits).expect("canonical ECO edit is valid");
    let new_sinks = plan.new_sinks(sinks);
    let new_modules = plan.new_module_of(&module_of);

    // From-scratch reference: the warm pruned engine over the edited
    // design (cold run grows the scratch, best warm iteration is taken).
    let fresh = GatedObjective::new(
        config.tech(),
        config.controller(),
        &workload.tables,
        &new_sinks,
        &new_modules,
    );
    let mut cold = fresh.clone();
    run_greedy_with_scratch(n, &mut cold, &params, &mut scratch)
        .expect("pruned greedy failed on the edited workload");
    let mut scratch_ms = f64::INFINITY;
    for _ in 0..ECO_ITERS {
        let mut warm = fresh.clone();
        let t = Instant::now();
        run_greedy_with_scratch(n, &mut warm, &params, &mut scratch)
            .expect("pruned greedy failed on the edited workload");
        scratch_ms = scratch_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }

    // Incremental engine, warm loop: one objective + one EcoScratch stay
    // alive; truncate() rewinds the objective to its leaf rows.
    let mut eco_obj = fresh.clone();
    let mut eco_scratch = EcoScratch::new();
    apply_eco(
        &old_topology,
        &old_locations,
        &edits,
        &mut eco_obj,
        &params,
        &mut eco_scratch,
    )
    .expect("incremental ECO failed on the edited workload");
    let mut warm_ms = f64::INFINITY;
    let mut loop_allocs = 0u64;
    let mut replayed = 0usize;
    let mut spliced = 0usize;
    for _ in 0..ECO_ITERS {
        eco_obj.truncate(n);
        let t = Instant::now();
        let outcome = apply_eco(
            &old_topology,
            &old_locations,
            &edits,
            &mut eco_obj,
            &params,
            &mut eco_scratch,
        )
        .expect("incremental ECO failed on the edited workload");
        warm_ms = warm_ms.min(t.elapsed().as_secs_f64() * 1e3);
        loop_allocs = loop_allocs.max(outcome.profile.loop_allocs);
        replayed = outcome.replayed;
        spliced = outcome.spliced;
    }

    EcoBench {
        warm_ms,
        scratch_ms,
        loop_allocs,
        replayed,
        spliced,
    }
}

#[expect(
    clippy::expect_used,
    reason = "bench harness: aborting on an unroutable generated workload is intended"
)]
fn run_benchmark(
    which: TsayBenchmark,
    params: &WorkloadParams,
    eco: bool,
    tracer: &Tracer,
) -> Vec<Comparison> {
    let workload =
        Workload::generate_traced(which, params, tracer).expect("workload generation failed");
    let sinks = &workload.benchmark.sinks;
    let n = sinks.len();
    let tech = Technology::default();
    let config = RouterConfig::new(tech.clone(), workload.benchmark.die);
    let module_of = workload.module_of();

    let nn = NearestNeighborObjective::new(&tech, sinks, None);
    let gated = GatedObjective::new(
        config.tech(),
        config.controller(),
        &workload.tables,
        sinks,
        &module_of,
    );
    let mut runs = if n > EXHAUSTIVE_LIMIT {
        let nn_factory = |members: &[u32]| {
            let sub: Vec<Sink> = members.iter().map(|&i| sinks[i as usize]).collect();
            NearestNeighborObjective::new(&tech, &sub, None)
        };
        let gated_factory = gated_region_factory(
            config.tech(),
            config.controller(),
            &workload.tables,
            sinks,
            &module_of,
        );
        vec![
            compare_coarsened(
                which.name(),
                "nearest-neighbor",
                n,
                &nn,
                &nn_factory,
                tracer,
            ),
            compare_coarsened(
                which.name(),
                "equation-3",
                n,
                &gated,
                &gated_factory,
                tracer,
            ),
        ]
    } else {
        vec![
            compare(which.name(), "nearest-neighbor", n, &nn, tracer),
            compare(which.name(), "equation-3", n, &gated, tracer),
        ]
    };

    // The ECO columns ride on the equation-3 row: the incremental engine
    // re-prices gating decisions, so that objective is the one an ECO
    // stream actually runs under. Scale benchmarks skip them — their
    // from-scratch reference is the coarsened engine, not the flat
    // pruned run the speedup is defined against.
    if eco {
        if n > EXHAUSTIVE_LIMIT {
            eprintln!("{which}: eco columns skipped (scale benchmark)");
        } else if let Some(run) = runs.iter_mut().find(|c| c.objective == "equation-3") {
            run.eco = Some(measure_eco(&workload, &config));
        }
    }

    // With tracing on, additionally record one full gated-routing flow —
    // Equation-3 merge, zero-skew embedding, Equation-3 evaluation — so
    // the timeline covers every pipeline layer, not just the merge loop.
    // Scale benchmarks route through the coarsened path, like the
    // measured runs.
    if tracer.enabled() {
        let routing = if n > EXHAUSTIVE_LIMIT {
            route_gated_coarsened_traced(
                sinks,
                &module_of,
                &workload.tables,
                &config,
                &CoarsenParams::default(),
                tracer,
            )
            .expect("gated routing failed on a generated workload")
        } else {
            route_gated_mapped_traced(sinks, &module_of, &workload.tables, &config, tracer)
                .expect("gated routing failed on a generated workload")
        };
        let report = evaluate_traced(
            &routing.tree,
            &routing.node_stats,
            config.controller(),
            config.tech(),
            DeviceRole::Gate,
            tracer,
        );
        assert!(report.total_switched_cap.is_finite());
    }
    runs
}

fn stats_json(out: &mut String, label: &str, run: &EngineRun) {
    let s = run.stats;
    let p = run.profile;
    let _ = write!(
        out,
        "      \"{label}\": {{\"exact_cost_evals\": {}, \"bound_evals\": {}, \
         \"bound_batches\": {}, \"bounds_filtered\": {}, \
         \"ring_expansions\": {}, \"heap_pops\": {}, \"wall_ms\": {:.3}, \
         \"seed_ms\": {:.3}, \"loop_ms\": {:.3}, \
         \"seed_allocs\": {}, \"loop_allocs\": {}}}",
        s.exact_cost_evals,
        s.bound_evals,
        s.bound_batches,
        s.bounds_filtered,
        s.ring_expansions,
        s.heap_pops,
        run.wall_ms,
        p.seed_ms,
        p.loop_ms,
        p.seed_allocs,
        p.loop_allocs
    );
}

fn render_json(params: &WorkloadParams, runs: &[Comparison]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"params\": {{\"stream_len\": {}, \"seed\": {}, \"groups\": {}}},",
        params.stream_len, params.seed, params.groups
    );
    out.push_str("  \"runs\": [\n");
    for (i, c) in runs.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(
            out,
            "      \"benchmark\": \"{}\", \"objective\": \"{}\", \"sinks\": {},",
            c.benchmark, c.objective, c.sinks
        );
        stats_json(&mut out, "pruned", &c.pruned);
        out.push_str(",\n");
        if let Some(exhaustive) = &c.exhaustive {
            stats_json(&mut out, "exhaustive", exhaustive);
            out.push_str(",\n");
            let _ = writeln!(
                out,
                "      \"exact_eval_ratio\": {:.6},",
                c.exact_eval_ratio()
            );
        }
        if let Some(eco) = &c.eco {
            let _ = writeln!(
                out,
                "      \"eco_warm_ms\": {:.4}, \"eco_scratch_ms\": {:.4}, \
                 \"eco_speedup_vs_scratch\": {:.2}, \"eco_loop_allocs\": {}, \
                 \"eco_replayed\": {}, \"eco_spliced\": {},",
                eco.warm_ms,
                eco.scratch_ms,
                eco.speedup_vs_scratch(),
                eco.loop_allocs,
                eco.replayed,
                eco.spliced
            );
        }
        let _ = writeln!(
            out,
            "      \"identical_topology\": {}",
            c.identical_topology
        );
        out.push_str(if i + 1 == runs.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn parse_benchmark(name: &str) -> Option<TsayBenchmark> {
    TsayBenchmark::ALL
        .into_iter()
        .chain(TsayBenchmark::SCALED)
        .find(|b| b.name() == name)
}

/// Parsed command line.
#[derive(Debug)]
struct Cli {
    benchmarks: Vec<TsayBenchmark>,
    eco: bool,
    out_path: String,
    trace_path: Option<String>,
}

/// Parses the argument list (without the program name). Errors are the
/// usage message to print before exiting nonzero.
fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
    let mut benchmarks: Vec<TsayBenchmark> = Vec::new();
    let mut eco = false;
    let mut out_path = String::from("BENCH_greedy.json");
    let mut trace_path = None;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if arg == "--eco" {
            eco = true;
        } else if arg == "--out" {
            match args.next() {
                Some(p) => out_path = p,
                None => return Err("--out requires a path".to_owned()),
            }
        } else if arg == "--trace" {
            match args.next() {
                Some(p) => trace_path = Some(p),
                None => return Err("--trace requires a path".to_owned()),
            }
        } else if let Some(b) = parse_benchmark(&arg) {
            benchmarks.push(b);
        } else {
            return Err(format!(
                "unknown argument `{arg}`; usage: greedy_bench [r1..r8] [--eco] \
                 [--out PATH] [--trace PATH]"
            ));
        }
    }
    if benchmarks.is_empty() {
        benchmarks.extend(TsayBenchmark::ALL);
    }
    Ok(Cli {
        benchmarks,
        eco,
        out_path,
        trace_path,
    })
}

/// Writes `contents` to `path`, reporting failure on stderr. The caller
/// must turn `false` into a nonzero exit status.
fn write_or_report(path: &str, contents: &str) -> bool {
    match std::fs::write(path, contents) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            false
        }
    }
}

fn main() -> ExitCode {
    gcr_cts::set_alloc_probe(alloc_probe);
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let chrome = cli
        .trace_path
        .as_ref()
        .map(|_| Arc::new(ChromeTraceSink::new()));
    let tracer = match &chrome {
        Some(sink) => Tracer::new(Arc::new(EchoWarnSink::new(
            Arc::clone(sink) as Arc<dyn TraceSink>
        ))),
        None => Tracer::disabled(),
    };

    let params = WorkloadParams::smoke();
    let mut runs = Vec::new();
    for which in cli.benchmarks {
        eprintln!("{which}: routing {} sinks...", which.num_sinks());
        runs.extend(run_benchmark(which, &params, cli.eco, &tracer));
    }

    let mut all_identical = true;
    for c in &runs {
        let (exhaustive_evals, exhaustive_wall) = match &c.exhaustive {
            Some(run) => (
                run.stats.exact_cost_evals.to_string(),
                format!("{:.1} ms", run.wall_ms),
            ),
            None => ("-".to_owned(), "coarsened".to_owned()),
        };
        println!(
            "{:>3} {:<16} sinks {:>7}  exact {:>9} / {:>9} ({:>5.1} %)  batches {:>6}  parked {:>8}  wall {:>8.1} ms / {:>10}  loop allocs {:>6}  identical {}",
            c.benchmark,
            c.objective,
            c.sinks,
            c.pruned.stats.exact_cost_evals,
            exhaustive_evals,
            100.0 * c.exact_eval_ratio(),
            c.pruned.stats.bound_batches,
            c.pruned.stats.bounds_filtered,
            c.pruned.wall_ms,
            exhaustive_wall,
            c.pruned.profile.loop_allocs,
            c.identical_topology,
        );
        all_identical &= c.identical_topology;
        if let Some(eco) = &c.eco {
            println!(
                "    eco: warm {:.4} ms vs scratch {:.3} ms -> {:.1}x, loop allocs {}, replayed {} + spliced {}",
                eco.warm_ms,
                eco.scratch_ms,
                eco.speedup_vs_scratch(),
                eco.loop_allocs,
                eco.replayed,
                eco.spliced,
            );
            if eco.loop_allocs > 0 {
                eprintln!(
                    "FAIL: {} warm ECO loop allocated {} times",
                    c.benchmark, eco.loop_allocs
                );
                all_identical = false;
            }
        }
    }

    let json = render_json(&params, &runs);
    if !write_or_report(&cli.out_path, &json) {
        return ExitCode::FAILURE;
    }
    println!("wrote {}", cli.out_path);

    if let (Some(path), Some(sink)) = (&cli.trace_path, &chrome) {
        if !write_or_report(path, &sink.to_json()) {
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if all_identical {
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: pruned engine diverged from the exhaustive reference");
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args_defaults_to_full_suite() {
        let cli = parse_args(Vec::new()).unwrap();
        assert_eq!(cli.benchmarks.len(), TsayBenchmark::ALL.len());
        assert_eq!(cli.out_path, "BENCH_greedy.json");
        assert!(cli.trace_path.is_none());
        assert!(!cli.eco);
    }

    #[test]
    fn parse_args_accepts_eco() {
        let cli = parse_args(["r4", "--eco"].map(String::from)).unwrap();
        assert!(cli.eco);
        assert_eq!(cli.benchmarks, vec![TsayBenchmark::R4]);
    }

    #[test]
    fn parse_args_accepts_benchmarks_out_and_trace() {
        let cli =
            parse_args(["r1", "r3", "--out", "x.json", "--trace", "t.json"].map(String::from))
                .unwrap();
        assert_eq!(cli.benchmarks.len(), 2);
        assert_eq!(cli.out_path, "x.json");
        assert_eq!(cli.trace_path.as_deref(), Some("t.json"));
    }

    #[test]
    fn arg_errors_are_reported() {
        assert!(parse_args(["--out"].map(String::from)).is_err());
        assert!(parse_args(["--trace"].map(String::from)).is_err());
        assert!(parse_args(["r9"].map(String::from))
            .unwrap_err()
            .contains("unknown argument"));
    }

    #[test]
    fn scale_benchmarks_parse_but_stay_out_of_the_default_suite() {
        let cli = parse_args(["r6", "r7", "r8"].map(String::from)).unwrap();
        assert_eq!(
            cli.benchmarks,
            vec![TsayBenchmark::R6, TsayBenchmark::R7, TsayBenchmark::R8]
        );
        let default = parse_args(Vec::new()).unwrap();
        assert!(!default
            .benchmarks
            .iter()
            .any(|b| TsayBenchmark::SCALED.contains(b)));
    }

    #[test]
    fn failed_writes_are_reported_as_false() {
        assert!(!write_or_report("/nonexistent-gcr-dir/trace.json", "{}"));
        let dir = std::env::temp_dir().join("gcr_greedy_bench_write_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        assert!(write_or_report(path.to_str().unwrap(), "{}"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
