//! Validates a Chrome-trace JSON file emitted by `--trace` flags.
//!
//! Usage: `trace_check TRACE.json [--require NAME ...]`
//!
//! Checks that the file parses as JSON, that it carries a non-empty
//! `traceEvents` array, that every event has the mandatory Chrome
//! trace-event fields (`name`, `ph`, `ts`), that `B`/`E` duration events
//! balance per span name, and — with `--require NAME` (repeatable) — that
//! a span or counter with each required name is present. CI runs this
//! over the bench-smoke trace so a malformed exporter fails the build
//! instead of producing a file `chrome://tracing` silently rejects.

use std::collections::BTreeMap;
use std::process::ExitCode;

use gcr_bench::json::{parse, Json};

/// Validates `text` as a Chrome trace, returning the set of event names
/// seen.
fn check_trace(text: &str) -> Result<Vec<String>, String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing \"traceEvents\" array")?;
    if events.is_empty() {
        return Err("\"traceEvents\" is empty".to_owned());
    }
    let mut names: Vec<String> = Vec::new();
    let mut balance: BTreeMap<String, i64> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("traceEvents[{i}] missing string \"name\""))?;
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("traceEvents[{i}] missing string \"ph\""))?;
        event
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("traceEvents[{i}] missing numeric \"ts\""))?;
        match ph {
            "B" => *balance.entry(name.to_owned()).or_insert(0) += 1,
            "E" => *balance.entry(name.to_owned()).or_insert(0) -= 1,
            "X" => {
                event
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("traceEvents[{i}] (X) missing numeric \"dur\""))?;
            }
            "C" | "i" => {}
            other => return Err(format!("traceEvents[{i}] has unknown ph {other:?}")),
        }
        names.push(name.to_owned());
    }
    for (name, count) in &balance {
        if *count != 0 {
            return Err(format!(
                "span \"{name}\" has unbalanced B/E events ({count:+})"
            ));
        }
    }
    Ok(names)
}

fn main() -> ExitCode {
    const USAGE: &str = "usage: trace_check TRACE.json [--require NAME ...]";
    let mut path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--require" {
            match args.next() {
                Some(name) => required.push(name),
                None => {
                    eprintln!("--require needs a span name");
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--help" || arg == "-h" {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        } else if path.is_none() {
            path = Some(arg);
        } else {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let names = match check_trace(&text) {
        Ok(names) => names,
        Err(msg) => {
            eprintln!("trace_check: {path}: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut missing = false;
    for want in &required {
        if !names.iter().any(|n| n == want) {
            eprintln!("trace_check: {path}: no event named \"{want}\"");
            missing = true;
        }
    }
    if missing {
        return ExitCode::FAILURE;
    }
    println!("trace_check: {path}: {} events OK", names.len());
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::check_trace;

    #[test]
    fn accepts_a_real_exported_trace() {
        use gcr_trace::{ChromeTraceSink, TraceSink, Tracer};
        use std::sync::Arc;
        let sink = Arc::new(ChromeTraceSink::new());
        let tracer = Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>);
        {
            let _outer = tracer.span("outer");
            let _inner = tracer.span("inner");
            tracer.counter("count", 3.0);
            tracer.warn("warn.category", "message");
        }
        let names = check_trace(&sink.to_json()).unwrap();
        for want in ["outer", "inner", "count", "warn.category"] {
            assert!(names.iter().any(|n| n == want), "missing {want}");
        }
    }

    #[test]
    fn rejects_malformed_traces() {
        assert!(check_trace("not json").is_err());
        assert!(check_trace("{}").is_err());
        assert!(check_trace("{\"traceEvents\": []}").is_err());
        // Unbalanced B without E.
        let unbalanced =
            "{\"traceEvents\": [{\"name\": \"a\", \"ph\": \"B\", \"ts\": 0, \"pid\": 0, \"tid\": 0}]}";
        assert!(check_trace(unbalanced).unwrap_err().contains("unbalanced"));
    }
}
