//! Perf-regression gate: compares two `BENCH_greedy.json` files.
//!
//! Usage: `bench_diff BASELINE.json NEW.json [--threshold PCT] [--strict]
//! [--trace PATH]`
//!
//! For every `(benchmark, objective)` run present in both files this
//! compares the **pruned engine's** wall time and reports the relative
//! change. The tool exits non-zero when
//!
//! * any run in the new file lost bit-identity with the exhaustive
//!   reference (`identical_topology: false`), or
//! * any common run's pruned wall time regressed by more than the
//!   threshold (default 25 %), or
//! * any common run's pruned `bound_evals` or `heap_pops` grew by more
//!   than the threshold. Wall time is noisy on shared CI hardware;
//!   these counters are deterministic, so a pruning-quality regression
//!   is caught even when the clock happens to look fine, or
//! * any new run's warm-ECO loop allocated (`eco_loop_allocs > 0` — a
//!   broken zero-allocation contract, gated without needing a
//!   baseline), or a common run's `eco_warm_ms` regressed, or its
//!   `eco_speedup_vs_scratch` fell, by more than the threshold, or
//! * any new run marked `"strict_zero_alloc": true` (the
//!   `activity_bench` streaming-scan rows) reported
//!   `pruned.loop_allocs > 0` — like the ECO contract, gated without
//!   needing a baseline.
//!
//! The ECO columns are optional on both sides (`greedy_bench --eco`
//! emits them); a file without them diffs exactly as before.
//!
//! Runs present in only one file are reported as informative skips and
//! never fail the gate by default, so the CI smoke job can measure a
//! benchmark subset against the full checked-in baseline. With
//! `--strict` — intended for full-suite baseline refreshes — a run
//! missing from either side is a failure, catching a benchmark that
//! silently fell out of the baseline. Speed-ups and small noise-level
//! regressions are informational.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;

use gcr_bench::json::{parse, Json};
use gcr_trace::{ChromeTraceSink, Tracer};

/// The fields `bench_diff` needs from one `runs[]` entry.
struct Run {
    pruned_wall_ms: f64,
    exact_cost_evals: f64,
    bound_evals: f64,
    heap_pops: f64,
    identical_topology: bool,
    /// NaN when the file was produced without `greedy_bench --eco`.
    eco_warm_ms: f64,
    eco_speedup: f64,
    eco_loop_allocs: f64,
    /// When true, `pruned_loop_allocs > 0` fails without a baseline
    /// (`activity_bench` emits this on its streaming-scan rows).
    strict_zero_alloc: bool,
    pruned_loop_allocs: f64,
}

fn load_runs(path: &str) -> Result<BTreeMap<(String, String), Run>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let runs = doc
        .get("runs")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{path}: missing \"runs\" array"))?;
    let mut out = BTreeMap::new();
    for (i, run) in runs.iter().enumerate() {
        let field = |key: &str| {
            run.get(key)
                .ok_or_else(|| format!("{path}: runs[{i}] missing \"{key}\""))
        };
        let benchmark = field("benchmark")?
            .as_str()
            .ok_or_else(|| format!("{path}: runs[{i}].benchmark is not a string"))?
            .to_owned();
        let objective = field("objective")?
            .as_str()
            .ok_or_else(|| format!("{path}: runs[{i}].objective is not a string"))?
            .to_owned();
        let pruned = field("pruned")?;
        let pruned_wall_ms = pruned
            .get("wall_ms")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{path}: runs[{i}].pruned.wall_ms is not a number"))?;
        let exact_cost_evals = pruned
            .get("exact_cost_evals")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        let bound_evals = pruned
            .get("bound_evals")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        let heap_pops = pruned
            .get("heap_pops")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        let identical_topology = field("identical_topology")?
            .as_bool()
            .ok_or_else(|| format!("{path}: runs[{i}].identical_topology is not a boolean"))?;
        let optional = |key: &str| run.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN);
        out.insert(
            (benchmark, objective),
            Run {
                pruned_wall_ms,
                exact_cost_evals,
                bound_evals,
                heap_pops,
                identical_topology,
                eco_warm_ms: optional("eco_warm_ms"),
                eco_speedup: optional("eco_speedup_vs_scratch"),
                eco_loop_allocs: optional("eco_loop_allocs"),
                strict_zero_alloc: run
                    .get("strict_zero_alloc")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
                pruned_loop_allocs: pruned
                    .get("loop_allocs")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN),
            },
        );
    }
    Ok(out)
}

/// Pure comparison over the two loaded run maps: the gate verdict plus
/// the report lines to print, in order. Separated from I/O so the gate
/// semantics (threshold, counters, strictness) are unit-testable.
fn diff(
    baseline: &BTreeMap<(String, String), Run>,
    fresh: &BTreeMap<(String, String), Run>,
    threshold_pct: f64,
    strict: bool,
) -> (bool, Vec<String>) {
    let mut ok = true;
    let mut lines = Vec::new();
    lines.push(format!(
        "{:<4} {:<18} {:>12} {:>12} {:>9}  verdict",
        "run", "objective", "base ms", "new ms", "delta"
    ));
    for ((benchmark, objective), new_run) in fresh {
        if !new_run.identical_topology {
            lines.push(format!(
                "{benchmark:<4} {objective:<18} {:>12} {:>12.3} {:>9}  FAIL (topology diverged)",
                "-", new_run.pruned_wall_ms, "-"
            ));
            ok = false;
            continue;
        }
        // The warm-ECO zero-allocation contract needs no baseline: any
        // measured run that allocated in its loop phase is a failure.
        if new_run.eco_loop_allocs > 0.0 {
            lines.push(format!(
                "{benchmark:<4} {objective:<18} FAIL (warm ECO loop allocated {} times)",
                new_run.eco_loop_allocs
            ));
            ok = false;
        }
        // Same baseline-free discipline for rows that opted into the
        // strict zero-allocation contract (streaming activity scans):
        // any warm-loop allocation is a failure on its own.
        if new_run.strict_zero_alloc && new_run.pruned_loop_allocs > 0.0 {
            lines.push(format!(
                "{benchmark:<4} {objective:<18} FAIL (strict warm loop allocated {} times)",
                new_run.pruned_loop_allocs
            ));
            ok = false;
        }
        match baseline.get(&(benchmark.clone(), objective.clone())) {
            Some(base) if base.pruned_wall_ms > 0.0 => {
                let delta_pct =
                    100.0 * (new_run.pruned_wall_ms - base.pruned_wall_ms) / base.pruned_wall_ms;
                let verdict = if delta_pct > threshold_pct {
                    ok = false;
                    "FAIL (regression)"
                } else if delta_pct < -threshold_pct {
                    "ok (speed-up)"
                } else {
                    "ok"
                };
                lines.push(format!(
                    "{benchmark:<4} {objective:<18} {:>12.3} {:>12.3} {:>+8.1}%  {verdict}",
                    base.pruned_wall_ms, new_run.pruned_wall_ms, delta_pct
                ));
                // Evaluation counts are deterministic; call out drift even
                // when wall time stays within the threshold.
                if new_run.exact_cost_evals.is_finite()
                    && base.exact_cost_evals.is_finite()
                    && new_run.exact_cost_evals > base.exact_cost_evals
                {
                    lines.push(format!(
                        "     note: exact cost evals grew {} -> {}",
                        base.exact_cost_evals, new_run.exact_cost_evals
                    ));
                }
                for (name, base_count, new_count) in [
                    ("bound_evals", base.bound_evals, new_run.bound_evals),
                    ("heap_pops", base.heap_pops, new_run.heap_pops),
                ] {
                    if base_count.is_finite() && new_count.is_finite() && base_count > 0.0 {
                        let count_delta_pct = 100.0 * (new_count - base_count) / base_count;
                        if count_delta_pct > threshold_pct {
                            ok = false;
                            lines.push(format!(
                                "     FAIL: {name} grew {base_count} -> {new_count} ({count_delta_pct:+.1}%)"
                            ));
                        }
                    }
                }
                // ECO columns, when both files carry them: warm
                // incremental wall time must not regress, and the
                // speedup over the from-scratch run must not collapse.
                if base.eco_warm_ms.is_finite()
                    && new_run.eco_warm_ms.is_finite()
                    && base.eco_warm_ms > 0.0
                {
                    let eco_delta_pct =
                        100.0 * (new_run.eco_warm_ms - base.eco_warm_ms) / base.eco_warm_ms;
                    if eco_delta_pct > threshold_pct {
                        ok = false;
                        lines.push(format!(
                            "     FAIL: eco_warm_ms regressed {:.4} -> {:.4} ({eco_delta_pct:+.1}%)",
                            base.eco_warm_ms, new_run.eco_warm_ms
                        ));
                    } else {
                        lines.push(format!(
                            "     eco: warm {:.4} -> {:.4} ms ({eco_delta_pct:+.1}%)",
                            base.eco_warm_ms, new_run.eco_warm_ms
                        ));
                    }
                }
                if base.eco_speedup.is_finite()
                    && new_run.eco_speedup.is_finite()
                    && base.eco_speedup > 0.0
                {
                    let drop_pct =
                        100.0 * (base.eco_speedup - new_run.eco_speedup) / base.eco_speedup;
                    if drop_pct > threshold_pct {
                        ok = false;
                        lines.push(format!(
                            "     FAIL: eco_speedup_vs_scratch fell {:.1}x -> {:.1}x ({drop_pct:+.1}%)",
                            base.eco_speedup, new_run.eco_speedup
                        ));
                    }
                }
            }
            Some(_) => {
                lines.push(format!(
                    "{benchmark:<4} {objective:<18} {:>12} {:>12.3} {:>9}  skipped (zero baseline)",
                    "0", new_run.pruned_wall_ms, "-"
                ));
            }
            None if strict => {
                lines.push(format!(
                    "{benchmark:<4} {objective:<18} {:>12} {:>12.3} {:>9}  FAIL (missing from baseline)",
                    "-", new_run.pruned_wall_ms, "-"
                ));
                ok = false;
            }
            None => {
                lines.push(format!(
                    "{benchmark:<4} {objective:<18} {:>12} {:>12.3} {:>9}  skipped (new, no baseline)",
                    "-", new_run.pruned_wall_ms, "-"
                ));
            }
        }
    }
    for key in baseline.keys() {
        if !fresh.contains_key(key) {
            if strict {
                lines.push(format!(
                    "{:<4} {:<18} FAIL (baseline-only: not measured in the new file)",
                    key.0, key.1
                ));
                ok = false;
            } else {
                lines.push(format!(
                    "{:<4} {:<18} skipped (baseline-only: not measured in the new file)",
                    key.0, key.1
                ));
            }
        }
    }
    (ok, lines)
}

fn run(
    baseline_path: &str,
    new_path: &str,
    threshold_pct: f64,
    strict: bool,
    tracer: &Tracer,
) -> Result<bool, String> {
    let _diff = tracer.span("diff.run");
    let baseline = {
        let _span = tracer.span("diff.load_baseline");
        load_runs(baseline_path)?
    };
    let fresh = {
        let _span = tracer.span("diff.load_new");
        load_runs(new_path)?
    };
    let _compare = tracer.span("diff.compare");
    tracer.counter("diff.baseline_runs", baseline.len() as f64);
    tracer.counter("diff.new_runs", fresh.len() as f64);

    let (ok, lines) = diff(&baseline, &fresh, threshold_pct, strict);
    for line in lines {
        println!("{line}");
    }
    Ok(ok)
}

fn main() -> ExitCode {
    const USAGE: &str =
        "usage: bench_diff BASELINE.json NEW.json [--threshold PCT] [--strict] [--trace PATH]";
    let mut positional: Vec<String> = Vec::new();
    let mut threshold_pct = 25.0;
    let mut strict = false;
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--strict" {
            strict = true;
        } else if arg == "--threshold" {
            match args.next().as_deref().map(str::parse::<f64>) {
                Some(Ok(t)) if t >= 0.0 => threshold_pct = t,
                _ => {
                    eprintln!("--threshold requires a non-negative percentage");
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--trace" {
            match args.next() {
                Some(p) => trace_path = Some(p),
                None => {
                    eprintln!("--trace requires a path");
                    return ExitCode::from(2);
                }
            }
        } else if arg == "--help" || arg == "-h" {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        } else {
            positional.push(arg);
        }
    }
    let [baseline_path, new_path] = positional.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let chrome = trace_path
        .as_ref()
        .map(|_| Arc::new(ChromeTraceSink::new()));
    let tracer = match &chrome {
        Some(sink) => Tracer::new(Arc::clone(sink) as Arc<dyn gcr_trace::TraceSink>),
        None => Tracer::disabled(),
    };

    let outcome = run(baseline_path, new_path, threshold_pct, strict, &tracer);

    if let (Some(path), Some(sink)) = (&trace_path, &chrome) {
        if let Err(e) = sink.write_to(path) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    match outcome {
        Ok(true) => {
            println!("bench_diff: OK (threshold {threshold_pct}%)");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("bench_diff: FAIL (threshold {threshold_pct}%)");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("bench_diff: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_entry(wall_ms: f64, identical: bool) -> Run {
        Run {
            pruned_wall_ms: wall_ms,
            exact_cost_evals: 100.0,
            bound_evals: 1_000.0,
            heap_pops: 500.0,
            identical_topology: identical,
            eco_warm_ms: f64::NAN,
            eco_speedup: f64::NAN,
            eco_loop_allocs: f64::NAN,
            strict_zero_alloc: false,
            pruned_loop_allocs: 0.0,
        }
    }

    fn eco_entry(wall_ms: f64, eco_warm_ms: f64, eco_speedup: f64) -> Run {
        Run {
            eco_warm_ms,
            eco_speedup,
            eco_loop_allocs: 0.0,
            ..run_entry(wall_ms, true)
        }
    }

    fn map(entries: Vec<(&str, &str, Run)>) -> BTreeMap<(String, String), Run> {
        entries
            .into_iter()
            .map(|(b, o, r)| ((b.to_owned(), o.to_owned()), r))
            .collect()
    }

    #[test]
    fn matching_runs_within_threshold_pass() {
        let baseline = map(vec![("r1", "equation-3", run_entry(10.0, true))]);
        let fresh = map(vec![("r1", "equation-3", run_entry(11.0, true))]);
        let (ok, lines) = diff(&baseline, &fresh, 25.0, false);
        assert!(ok, "{lines:?}");
        assert!(lines.iter().any(|l| l.ends_with("ok")));
    }

    #[test]
    fn wall_time_regressions_fail() {
        let baseline = map(vec![("r1", "equation-3", run_entry(10.0, true))]);
        let fresh = map(vec![("r1", "equation-3", run_entry(20.0, true))]);
        let (ok, lines) = diff(&baseline, &fresh, 25.0, false);
        assert!(!ok);
        assert!(lines.iter().any(|l| l.contains("FAIL (regression)")));
    }

    #[test]
    fn diverged_topology_fails_even_without_baseline() {
        let baseline = map(vec![]);
        let fresh = map(vec![("r6", "equation-3", run_entry(5.0, false))]);
        let (ok, lines) = diff(&baseline, &fresh, 25.0, false);
        assert!(!ok);
        assert!(lines.iter().any(|l| l.contains("topology diverged")));
    }

    #[test]
    fn counter_growth_fails_when_wall_time_is_quiet() {
        let baseline = map(vec![("r2", "nearest-neighbor", run_entry(10.0, true))]);
        let mut new_run = run_entry(10.0, true);
        new_run.heap_pops = 5_000.0;
        let fresh = map(vec![("r2", "nearest-neighbor", new_run)]);
        let (ok, lines) = diff(&baseline, &fresh, 25.0, false);
        assert!(!ok);
        assert!(lines.iter().any(|l| l.contains("heap_pops grew")));
    }

    #[test]
    fn eco_runs_within_threshold_pass_and_regressions_fail() {
        let baseline = map(vec![("r4", "equation-3", eco_entry(10.0, 0.10, 100.0))]);
        let fresh = map(vec![("r4", "equation-3", eco_entry(10.0, 0.11, 95.0))]);
        let (ok, lines) = diff(&baseline, &fresh, 25.0, false);
        assert!(ok, "{lines:?}");

        let fresh = map(vec![("r4", "equation-3", eco_entry(10.0, 0.30, 33.0))]);
        let (ok, lines) = diff(&baseline, &fresh, 25.0, false);
        assert!(!ok);
        assert!(lines.iter().any(|l| l.contains("eco_warm_ms regressed")));
        assert!(lines
            .iter()
            .any(|l| l.contains("eco_speedup_vs_scratch fell")));
    }

    #[test]
    fn strict_rows_fail_on_any_loop_allocation_without_a_baseline() {
        let baseline = map(vec![]);
        let mut new_run = run_entry(10.0, true);
        new_run.strict_zero_alloc = true;
        new_run.pruned_loop_allocs = 2.0;
        let fresh = map(vec![("bursty", "activity-scan", new_run)]);
        let (ok, lines) = diff(&baseline, &fresh, 25.0, false);
        assert!(!ok);
        assert!(lines.iter().any(|l| l.contains("strict warm loop")));

        // The same allocations on a row that did not opt in stay quiet:
        // BENCH_greedy's coarsened rows legitimately allocate.
        let mut lax = run_entry(10.0, true);
        lax.pruned_loop_allocs = 12.0;
        let fresh = map(vec![("r6", "equation-3", lax)]);
        let (ok, _) = diff(&baseline, &fresh, 25.0, false);
        assert!(ok, "non-strict rows must tolerate loop allocations");
    }

    #[test]
    fn eco_loop_allocations_fail_without_a_baseline() {
        let baseline = map(vec![]);
        let mut new_run = eco_entry(10.0, 0.10, 100.0);
        new_run.eco_loop_allocs = 3.0;
        let fresh = map(vec![("r1", "equation-3", new_run)]);
        let (ok, lines) = diff(&baseline, &fresh, 25.0, false);
        assert!(!ok);
        assert!(lines.iter().any(|l| l.contains("warm ECO loop allocated")));
    }

    #[test]
    fn files_without_eco_columns_diff_as_before() {
        let baseline = map(vec![("r1", "equation-3", run_entry(10.0, true))]);
        let fresh = map(vec![("r1", "equation-3", eco_entry(10.0, 0.1, 80.0))]);
        let (ok, lines) = diff(&baseline, &fresh, 25.0, false);
        assert!(ok, "one-sided eco columns must stay informative: {lines:?}");
    }

    #[test]
    fn missing_runs_skip_by_default_and_fail_in_strict_mode() {
        // A one-sided pair in each direction.
        let baseline = map(vec![("r1", "equation-3", run_entry(10.0, true))]);
        let fresh = map(vec![("r6", "equation-3", run_entry(900.0, true))]);

        let (ok, lines) = diff(&baseline, &fresh, 25.0, false);
        assert!(ok, "one-sided runs must stay informative by default");
        assert!(lines
            .iter()
            .any(|l| l.contains("skipped (new, no baseline)")));
        assert!(lines.iter().any(|l| l.contains("skipped (baseline-only")));

        let (ok, lines) = diff(&baseline, &fresh, 25.0, true);
        assert!(!ok, "strict mode must flag one-sided runs");
        assert!(lines
            .iter()
            .any(|l| l.contains("FAIL (missing from baseline)")));
        assert!(lines.iter().any(|l| l.contains("FAIL (baseline-only")));
    }

    #[test]
    fn strict_mode_passes_when_both_sides_match() {
        let baseline = map(vec![
            ("r1", "equation-3", run_entry(10.0, true)),
            ("r6", "equation-3", run_entry(800.0, true)),
        ]);
        let fresh = map(vec![
            ("r1", "equation-3", run_entry(9.0, true)),
            ("r6", "equation-3", run_entry(820.0, true)),
        ]);
        let (ok, _) = diff(&baseline, &fresh, 25.0, true);
        assert!(ok);
    }
}
