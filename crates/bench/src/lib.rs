//! Shared fixtures for the Criterion benches: pre-generated workloads at
//! several scales so individual benches measure the algorithm, not the
//! workload generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use gcr_rctree::Technology;
use gcr_workloads::{Benchmark, TsayBenchmark, Workload, WorkloadParams};

/// A benchmark-sized fixture: workload plus technology.
pub struct Fixture {
    /// The generated workload (benchmark + activity tables).
    pub workload: Workload,
    /// Default technology.
    pub tech: Technology,
}

/// Workload parameters used across all benches: shorter streams than the
/// experiments (the stream scan is benchmarked separately).
#[must_use]
pub fn bench_params() -> WorkloadParams {
    WorkloadParams {
        stream_len: 5_000,
        ..WorkloadParams::default()
    }
}

/// A uniform benchmark of `n` sinks with matching activity model.
#[must_use]
#[expect(
    clippy::expect_used,
    reason = "bench fixture: aborting on a malformed workload is intended"
)]
pub fn uniform_fixture(n: usize) -> Fixture {
    let side = 30_000.0 * (n as f64 / 267.0).sqrt();
    let workload =
        Workload::for_benchmark(Benchmark::uniform(n, side, 7), &bench_params()).expect("valid");
    Fixture {
        workload,
        tech: Technology::default(),
    }
}

/// The r1 fixture used by the per-figure benches.
#[must_use]
#[expect(
    clippy::expect_used,
    reason = "bench fixture: aborting on a malformed workload is intended"
)]
pub fn r1_fixture() -> Fixture {
    Fixture {
        workload: Workload::generate(TsayBenchmark::R1, &bench_params()).expect("valid"),
        tech: Technology::default(),
    }
}
