//! A minimal, dependency-free JSON reader for the benchmark artifacts.
//!
//! The repo is built offline (no serde); the bench JSON files are written
//! by hand-rolled formatters, so this parser only needs to cover standard
//! JSON: objects, arrays, strings with escapes, numbers, booleans, and
//! null. It is used by `bench_diff` to compare two `BENCH_greedy.json`
//! files.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Key order is not preserved; the bench artifacts never
    /// rely on it.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first malformed byte.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal (expected null/true/false)"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos = end;
                            // Surrogate pairs never appear in the bench
                            // artifacts; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 scalar starting at b.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let Some(ch) = s.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_document() {
        let doc = r#"{
            "params": {"stream_len": 5000, "seed": 7, "groups": 4},
            "runs": [
                {"benchmark": "r1", "objective": "nearest-neighbor",
                 "pruned": {"wall_ms": 12.5}, "identical_topology": true},
                {"benchmark": "r1", "objective": "equation-3",
                 "pruned": {"wall_ms": -3.25e1}, "identical_topology": false}
            ]
        }"#;
        let v = parse(doc).unwrap();
        let runs = v.get("runs").and_then(Json::as_array).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("benchmark").and_then(Json::as_str), Some("r1"));
        assert_eq!(
            runs[0]
                .get("pruned")
                .and_then(|p| p.get("wall_ms"))
                .and_then(Json::as_f64),
            Some(12.5)
        );
        assert_eq!(
            runs[1]
                .get("pruned")
                .and_then(|p| p.get("wall_ms"))
                .and_then(Json::as_f64),
            Some(-32.5)
        );
        assert_eq!(
            runs[1].get("identical_topology").and_then(Json::as_bool),
            Some(false)
        );
    }

    #[test]
    fn strings_decode_escapes_and_unicode() {
        let v = parse(r#""a\\b\n\t\"\u0041 π""#).unwrap();
        assert_eq!(v.as_str(), Some("a\\b\n\t\"A π"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "{}x",
            "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn empty_containers_and_null() {
        assert_eq!(parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Object(BTreeMap::new()));
        assert_eq!(parse(" null ").unwrap(), Json::Null);
    }
}
