//! Micro-benches of the substrates: geometry kernel, zero-skew merge,
//! activity tables, probability queries.
// Benchmark drivers: fixtures are trusted, aborting on a malformed one
// is the intended failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use gcr_activity::{ActivityTables, CpuModel, ModuleSet, StreamStats};
use gcr_cts::{zero_skew_merge, Sink, SubtreeState};
use gcr_geometry::{Point, Trr};
use gcr_rctree::Technology;

fn bench_geometry(c: &mut Criterion) {
    let a = Trr::point(Point::new(100.0, 200.0)).expanded(500.0);
    let b = Trr::point(Point::new(2_000.0, 900.0)).expanded(800.0);
    c.bench_function("trr/distance", |bch| b_iter_distance(bch, &a, &b));
    c.bench_function("trr/expand_intersect", |bch| {
        bch.iter(|| {
            let d = a.distance(&b);
            a.expanded(d * 0.4)
                .intersection_with_slack(&b.expanded(d * 0.6), 1e-6)
        });
    });
}

fn b_iter_distance(bch: &mut criterion::Bencher<'_>, a: &Trr, b: &Trr) {
    bch.iter(|| a.distance(b));
}

fn bench_zero_skew_merge(c: &mut Criterion) {
    let tech = Technology::default();
    let a = SubtreeState::leaf_with_device(
        &Sink::new(Point::new(0.0, 0.0), 0.05),
        Some(tech.and_gate()),
    );
    let b = SubtreeState::leaf_with_device(
        &Sink::new(Point::new(5_000.0, 2_000.0), 0.08),
        Some(tech.and_gate()),
    );
    c.bench_function("zero_skew_merge/gated_pair", |bch| {
        bch.iter(|| zero_skew_merge(&tech, &a, &b));
    });
}

fn bench_activity(c: &mut Criterion) {
    let model = CpuModel::builder(267)
        .instructions(32)
        .groups(16)
        .seed(3)
        .build()
        .unwrap();
    let stream = model.generate_stream(20_000);

    c.bench_function("activity/scan_20k_stream", |b| {
        b.iter(|| ActivityTables::scan(model.rtl(), &stream));
    });

    let tables = ActivityTables::scan(model.rtl(), &stream);
    let set = ModuleSet::with_modules(267, (0..267).step_by(3));
    c.bench_function("activity/enable_stats_K32", |b| {
        b.iter(|| tables.enable_stats(&set));
    });

    c.bench_function("activity/stream_stats", |b| {
        b.iter(|| StreamStats::collect(model.rtl(), &stream));
    });

    // The brute-force oracle the tables replace — the paper's complexity
    // argument in numbers.
    c.bench_function("activity/brute_force_scan", |b| {
        b.iter(|| {
            (
                stream.signal_probability(model.rtl(), &set),
                stream.transition_probability(model.rtl(), &set),
            )
        });
    });
}

criterion_group! {
    name = substrates;
    config = Criterion::default();
    targets = bench_geometry, bench_zero_skew_merge, bench_activity
}
criterion_main!(substrates);
