//! One bench per paper artifact: how long each table/figure takes to
//! regenerate on its reference benchmark (r1 unless stated).
// Benchmark drivers: fixtures are trusted, aborting on a malformed one
// is the intended failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use gcr_bench::bench_params;
use gcr_rctree::Technology;
use gcr_report::{fig3, fig4, fig5, fig6, run_pipeline, table4, DEFAULT_STRENGTHS};
use gcr_workloads::{TsayBenchmark, Workload};

fn bench_table4(c: &mut Criterion) {
    let params = bench_params();
    c.bench_function("table4/r1-r2", |b| {
        b.iter(|| table4(&[TsayBenchmark::R1, TsayBenchmark::R2], &params).unwrap());
    });
}

fn bench_fig3(c: &mut Criterion) {
    let params = bench_params();
    let tech = Technology::default();
    c.bench_function("fig3/r1", |b| {
        b.iter(|| fig3(&[TsayBenchmark::R1], &params, &tech).unwrap());
    });
}

fn bench_fig4(c: &mut Criterion) {
    let params = bench_params();
    let tech = Technology::default();
    c.bench_function("fig4/r1-two-points", |b| {
        b.iter(|| fig4(&[0.2, 0.6], TsayBenchmark::R1, &params, &tech).unwrap());
    });
}

fn bench_fig5(c: &mut Criterion) {
    let params = bench_params();
    let tech = Technology::default();
    c.bench_function("fig5/r1-five-strengths", |b| {
        b.iter(|| {
            fig5(
                &[0.0, 0.1, 0.2, 0.4, 0.8],
                TsayBenchmark::R1,
                &params,
                &tech,
            )
            .unwrap()
        });
    });
}

fn bench_fig6(c: &mut Criterion) {
    let params = bench_params();
    let tech = Technology::default();
    c.bench_function("fig6/r1-three-levels", |b| {
        b.iter(|| fig6(&[0, 1, 2], &[TsayBenchmark::R1], &params, &tech).unwrap());
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let params = bench_params();
    let tech = Technology::default();
    let w = Workload::generate(TsayBenchmark::R1, &params).unwrap();
    c.bench_function("pipeline/r1-full", |b| {
        b.iter(|| run_pipeline(&w, &tech, DEFAULT_STRENGTHS).unwrap());
    });
}

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets = bench_table4, bench_fig3, bench_fig4, bench_fig5, bench_fig6, bench_pipeline
}
criterion_main!(experiments);
