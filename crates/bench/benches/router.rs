//! Scaling of the core routing algorithms: the Equation-3 greedy router,
//! the nearest-neighbor baseline, embedding, gate reduction, and
//! evaluation — plus the objective ablation (min-SC vs nearest-neighbor
//! under identical gating).
// Benchmark drivers: fixtures are trusted, aborting on a malformed one
// is the intended failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcr_bench::uniform_fixture;
use gcr_core::{
    evaluate_with_mask, reduce_gates_untied, route_gated, ReductionParams, RouterConfig,
};
use gcr_cts::{build_buffered_tree, embed_sized, DeviceAssignment, SizingLimits};

fn bench_route_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_gated");
    group.sample_size(10);
    for n in [64usize, 128, 267, 512] {
        let f = uniform_fixture(n);
        let config = RouterConfig::new(f.tech.clone(), f.workload.benchmark.die);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                route_gated(&f.workload.benchmark.sinks, &f.workload.tables, &config).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_buffered_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffered_tree");
    group.sample_size(10);
    for n in [128usize, 512] {
        let f = uniform_fixture(n);
        let src = f.workload.benchmark.die.center();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| build_buffered_tree(&f.tech, &f.workload.benchmark.sinks, src).unwrap());
        });
    }
    group.finish();
}

fn bench_embed(c: &mut Criterion) {
    let f = uniform_fixture(267);
    let config = RouterConfig::new(f.tech.clone(), f.workload.benchmark.die);
    let routing = route_gated(&f.workload.benchmark.sinks, &f.workload.tables, &config).unwrap();
    c.bench_function("embed_sized/267", |b| {
        b.iter(|| {
            embed_sized(
                &routing.topology,
                &f.workload.benchmark.sinks,
                &f.tech,
                &DeviceAssignment::everywhere(&routing.topology, f.tech.and_gate()),
                config.source(),
                SizingLimits::default(),
            )
            .unwrap()
        });
    });
}

fn bench_reduction_and_evaluate(c: &mut Criterion) {
    let f = uniform_fixture(267);
    let config = RouterConfig::new(f.tech.clone(), f.workload.benchmark.die);
    let routing = route_gated(&f.workload.benchmark.sinks, &f.workload.tables, &config).unwrap();
    let params = ReductionParams::from_strength_scaled(
        0.2,
        &f.tech,
        f.workload.benchmark.die.half_perimeter() / 8.0,
    );
    c.bench_function("reduce_gates_untied/267", |b| {
        b.iter(|| reduce_gates_untied(&routing, &f.tech, &params));
    });
    let mask = reduce_gates_untied(&routing, &f.tech, &params);
    c.bench_function("evaluate_with_mask/267", |b| {
        b.iter(|| {
            evaluate_with_mask(
                &routing.tree,
                &routing.node_stats,
                config.controller(),
                &f.tech,
                &mask,
            )
        });
    });
}

/// Ablation: the Equation-3 objective vs the geometry-only
/// nearest-neighbor objective, building the same-size topology. (The
/// quality comparison lives in `gcr-report --bin ablations`.)
fn bench_objective_ablation(c: &mut Criterion) {
    let f = uniform_fixture(267);
    let config = RouterConfig::new(f.tech.clone(), f.workload.benchmark.die);
    let mut group = c.benchmark_group("objective");
    group.sample_size(10);
    group.bench_function("min_switched_cap", |b| {
        b.iter(|| route_gated(&f.workload.benchmark.sinks, &f.workload.tables, &config).unwrap());
    });
    group.bench_function("nearest_neighbor", |b| {
        b.iter(|| {
            gcr_cts::nearest_neighbor_topology(
                &f.tech,
                &f.workload.benchmark.sinks,
                Some(f.tech.and_gate()),
            )
            .unwrap()
        });
    });
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let f = uniform_fixture(267);
    let config = RouterConfig::new(f.tech.clone(), f.workload.benchmark.die);
    let routing = route_gated(&f.workload.benchmark.sinks, &f.workload.tables, &config).unwrap();
    c.bench_function("reduce_gates_optimal/267", |b| {
        b.iter(|| gcr_core::reduce_gates_optimal(&routing, &f.tech, config.controller()));
    });
    c.bench_function("embed_bounded_skew/267", |b| {
        b.iter(|| {
            gcr_cts::embed_bounded_skew(
                &routing.topology,
                &f.workload.benchmark.sinks,
                &f.tech,
                &routing.assignment,
                config.source(),
                25.0,
            )
            .unwrap()
        });
    });
    c.bench_function("realize_routes/267", |b| {
        b.iter(|| gcr_cts::realize_routes(&routing.tree));
    });
    let stream = {
        let w = &f.workload;
        gcr_activity::CpuModel::builder(w.benchmark.sinks.len())
            .instructions(w.params.instructions)
            .usage_fraction(w.params.usage_fraction)
            .persistence(w.params.persistence)
            .groups(w.params.groups)
            .seed(w.params.seed)
            .build()
            .unwrap()
            .generate_stream(w.params.stream_len)
    };
    let mask = vec![true; routing.tree.len()];
    c.bench_function("simulate_stream/267x5000", |b| {
        b.iter(|| {
            gcr_core::simulate_stream(
                &routing.tree,
                &routing.node_modules,
                &mask,
                f.workload.tables.rtl(),
                &stream,
                config.controller(),
                &f.tech,
            )
        });
    });
}

criterion_group! {
    name = router;
    config = Criterion::default().sample_size(10);
    targets = bench_route_scaling, bench_buffered_baseline, bench_embed,
              bench_reduction_and_evaluate, bench_objective_ablation,
              bench_extensions
}
criterion_main!(router);
